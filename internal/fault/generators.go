package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// DefaultHorizon is the step horizon of the seeded generators: faults are
// injected at steps 1..DefaultHorizon and the plan is settled afterwards.
// Transient (finite-horizon) plans are what make the self-stabilisation
// story well defined — convergence is demanded after the faults cease.
const DefaultHorizon = 512

// Drop returns the seeded plan that, while active, replaces each delivered
// message independently with probability p by m0 (see the package comment
// for why omission delivers m0 rather than starving the link).
func Drop(seed int64, p float64) Plan { return DropFor(seed, p, DefaultHorizon) }

// DropFor is Drop with an explicit fault horizon in steps.
func DropFor(seed int64, p float64, horizon int) Plan {
	return newMsgFaults("drop", FateDrop, seed, p, horizon)
}

// Dup returns the seeded plan that, while active, duplicates each delivered
// message independently with probability p.
func Dup(seed int64, p float64) Plan { return DupFor(seed, p, DefaultHorizon) }

// DupFor is Dup with an explicit fault horizon in steps.
func DupFor(seed int64, p float64, horizon int) Plan {
	return newMsgFaults("dup", FateDup, seed, p, horizon)
}

// msgFaults injects independent per-delivery message faults up to a horizon.
type msgFaults struct {
	kind    string
	fate    Fate
	seed    int64
	p       float64
	horizon int
	rng     *rand.Rand
	last    int
}

func newMsgFaults(kind string, fate Fate, seed int64, p float64, horizon int) *msgFaults {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	return &msgFaults{kind: kind, fate: fate, seed: seed, p: p, horizon: horizon}
}

func (f *msgFaults) Name() string { return fmt.Sprintf("%s:%g", f.kind, f.p) }

func (f *msgFaults) Begin(top Topology) {
	f.rng = rand.New(rand.NewSource(f.seed))
	f.last = 0
}

func (f *msgFaults) Step(t int, view View, dec *Decision) { f.last = t }

func (f *msgFaults) Filter(t int, link int) Fate {
	if t > f.horizon {
		return FateDeliver
	}
	if f.rng.Float64() < f.p {
		return f.fate
	}
	return FateDeliver
}

func (f *msgFaults) Settled() bool { return f.last >= f.horizon }

// crashEvent is one scheduled crash, with an optional recovery.
type crashEvent struct {
	victim  int
	at      int // crash step
	up      int // recovery step; 0 = never
	kind    RecoverKind
	crashed bool
	revived bool
}

// crashPlan injects a seeded sequence of non-overlapping crash events.
type crashPlan struct {
	name    string
	seed    int64
	k       int
	kind    RecoverKind // RecoverNone = crash-stop
	horizon int

	// fixed, when non-nil, overrides the seeded event generation (CrashAt).
	fixed []crashEvent

	events    []crashEvent
	lastEvent int
	last      int
}

// CrashStop returns the seeded plan that permanently crashes k random
// nodes at seeded steps within the default horizon. A crashed node stops
// computing; its frontier keeps draining and it emits m0, so neighbours
// observe silence rather than wedging.
func CrashStop(seed int64, k int) Plan { return CrashStopFor(seed, k, DefaultHorizon) }

// CrashStopFor is CrashStop with an explicit horizon.
func CrashStopFor(seed int64, k, horizon int) Plan {
	return newCrashPlan("crashstop", seed, k, RecoverNone, horizon)
}

// CrashRecover returns the seeded plan that crashes k random nodes at
// seeded steps and revives each after a seeded downtime. With reset the
// recovery resets the node to its initial state via the machine (the
// transient memory-loss fault; machines with stable storage can override
// the reboot state through machine.Rebooter); without reset the node
// resumes its frozen state, having missed the messages its frontier
// drained while it was down.
func CrashRecover(seed int64, k int, reset bool) Plan {
	return CrashRecoverFor(seed, k, reset, DefaultHorizon)
}

// CrashRecoverFor is CrashRecover with an explicit horizon.
func CrashRecoverFor(seed int64, k int, reset bool, horizon int) Plan {
	name, kind := "pause", RecoverResume
	if reset {
		name, kind = "crash", RecoverReset
	}
	return newCrashPlan(name, seed, k, kind, horizon)
}

// CrashAt returns the deterministic plan that crashes one explicit victim
// at one explicit step, reviving it after down steps (down ≤ 0 crashes it
// forever). It is the unit-test and bisection form of the crash plans.
func CrashAt(victim, at, down int, kind RecoverKind) Plan {
	if at < 1 {
		at = 1
	}
	ev := crashEvent{victim: victim, at: at, kind: kind}
	if down > 0 && kind != RecoverNone {
		ev.up = at + down
	} else {
		ev.kind = RecoverNone
	}
	return &crashPlan{
		name:  fmt.Sprintf("crashat:%d@%d", victim, at),
		fixed: []crashEvent{ev},
	}
}

func newCrashPlan(name string, seed int64, k int, kind RecoverKind, horizon int) *crashPlan {
	if k < 0 {
		k = 0
	}
	if horizon < 1 {
		horizon = 1
	}
	return &crashPlan{name: name, seed: seed, k: k, kind: kind, horizon: horizon}
}

func (c *crashPlan) Name() string {
	if c.fixed != nil {
		return c.name
	}
	return fmt.Sprintf("%s:%d", c.name, c.k)
}

func (c *crashPlan) Begin(top Topology) {
	c.last = 0
	if c.fixed != nil {
		c.events = append(c.events[:0], c.fixed...)
	} else {
		c.events = c.seededEvents(top, nil)
	}
	c.lastEvent = 0
	for _, ev := range c.events {
		if ev.at > c.lastEvent {
			c.lastEvent = ev.at
		}
		if ev.up > c.lastEvent {
			c.lastEvent = ev.up
		}
	}
}

// seededEvents draws k non-overlapping crash events: crash steps are spread
// across the horizon in increasing order, each event fully ends (recovery
// inclusive) before the next begins, so composed bookkeeping stays simple
// and the fault burst is over by a bounded step. victims, when non-nil,
// fixes the victim sequence (the adversary's high-degree targets); nil
// draws victims uniformly.
func (c *crashPlan) seededEvents(top Topology, victims []int) []crashEvent {
	n := top.Nodes()
	if n == 0 || c.k == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(c.seed))
	gap := c.horizon / (c.k + 1)
	if gap < 2 {
		gap = 2
	}
	down := gap / 2
	if down < 1 {
		down = 1
	}
	events := make([]crashEvent, 0, c.k)
	next := 1
	for i := 0; i < c.k; i++ {
		ev := crashEvent{at: next + rng.Intn(gap), kind: c.kind}
		if victims != nil {
			ev.victim = victims[i%len(victims)]
		} else {
			ev.victim = rng.Intn(n)
		}
		if c.kind != RecoverNone {
			ev.up = ev.at + 1 + rng.Intn(down)
			next = ev.up + 1
		} else {
			next = ev.at + 1
		}
		// Clamp into the horizon: the documented contract is that every
		// fault happens at steps 1..horizon. The accumulated spacing can
		// overshoot for late events, which then compress toward the end —
		// an at==up event is a reboot blip (crash and recovery applied in
		// the same step).
		if ev.at > c.horizon {
			ev.at = c.horizon
		}
		if ev.up > c.horizon {
			ev.up = c.horizon
		}
		events = append(events, ev)
	}
	return events
}

func (c *crashPlan) Step(t int, view View, dec *Decision) {
	c.last = t
	for i := range c.events {
		ev := &c.events[i]
		if !ev.crashed && t >= ev.at {
			ev.crashed = true
			dec.Crash[ev.victim] = true
		}
		if ev.crashed && !ev.revived && ev.up > 0 && t >= ev.up {
			ev.revived = true
			dec.Recover[ev.victim] = ev.kind
		}
	}
}

func (c *crashPlan) Filter(t int, link int) Fate { return FateDeliver }

func (c *crashPlan) Settled() bool { return c.last >= c.lastEvent }

// Adversary returns the seeded plan that spends its fault budget on the
// highest-degree nodes: it cycles budget crash-reset events over the top
// max(1, budget/2) hubs (ties broken by node id, so a star's centre eats
// the whole budget) and, while active, drops messages on links incident to
// those hubs with probability ¼. Hubs are where information concentrates —
// preferential-attachment graphs route most gossip through them — so this
// is the adversary that a fault-tolerance claim has to survive first.
func Adversary(seed int64, budget int) Plan { return AdversaryFor(seed, budget, DefaultHorizon) }

// AdversaryFor is Adversary with an explicit horizon.
func AdversaryFor(seed int64, budget, horizon int) Plan {
	if budget < 1 {
		budget = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	return &adversaryPlan{seed: seed, budget: budget, horizon: horizon}
}

// adversaryHubDropP is the omission probability on hub-incident links while
// the adversary is active.
const adversaryHubDropP = 0.25

type adversaryPlan struct {
	seed    int64
	budget  int
	horizon int

	crashes *crashPlan
	hubLink []bool
	rng     *rand.Rand
	last    int
}

func (a *adversaryPlan) Name() string { return fmt.Sprintf("adversary:%d", a.budget) }

func (a *adversaryPlan) Begin(top Topology) {
	a.last = 0
	a.rng = rand.New(rand.NewSource(a.seed))
	n := top.Nodes()
	targets := make([]int, n)
	for v := range targets {
		targets[v] = v
	}
	sort.SliceStable(targets, func(i, j int) bool {
		di, dj := top.Degree(targets[i]), top.Degree(targets[j])
		if di != dj {
			return di > dj
		}
		return targets[i] < targets[j]
	})
	if hubs := max(1, a.budget/2); len(targets) > hubs {
		targets = targets[:hubs]
	}
	a.crashes = newCrashPlan("adversary", a.seed+1, min(a.budget, n), RecoverReset, a.horizon)
	if n > 0 {
		a.crashes.events = a.crashes.seededEvents(top, targets)
	} else {
		a.crashes.events = nil
	}
	a.crashes.lastEvent = 0
	for _, ev := range a.crashes.events {
		a.crashes.lastEvent = max(a.crashes.lastEvent, ev.at, ev.up)
	}
	a.hubLink = make([]bool, top.Links())
	isTarget := make([]bool, n)
	for _, v := range targets {
		isTarget[v] = true
	}
	for l := range a.hubLink {
		a.hubLink[l] = isTarget[top.LinkSrc(l)] || isTarget[top.LinkDst(l)]
	}
}

func (a *adversaryPlan) Step(t int, view View, dec *Decision) {
	a.last = t
	a.crashes.Step(t, view, dec)
}

func (a *adversaryPlan) Filter(t int, link int) Fate {
	if t > a.horizon || !a.hubLink[link] {
		return FateDeliver
	}
	if a.rng.Float64() < adversaryHubDropP {
		return FateDrop
	}
	return FateDeliver
}

func (a *adversaryPlan) Settled() bool {
	return a.last >= a.horizon && a.crashes.Settled()
}

// Byzantine returns the seeded plan that, while active, corrupts each
// delivered message independently with probability p: the payload is
// rewritten by a seeded corruptor drawn per corruption — a single bit
// flip, a swap with m0 (corruption to silence), or a replay of the
// previous payload corrupted away on the same link. See FateCorrupt for
// the delivery semantics and machine.MessageGuard for how receivers
// tolerate the garbage.
func Byzantine(seed int64, p float64) Plan { return ByzantineFor(seed, p, DefaultHorizon) }

// ByzantineFor is Byzantine with an explicit fault horizon in steps.
func ByzantineFor(seed int64, p float64, horizon int) Plan {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	return &byzantinePlan{seed: seed, p: p, horizon: horizon}
}

type byzantinePlan struct {
	seed    int64
	p       float64
	horizon int

	rng  *rand.Rand
	prev []string // per link: the last genuine payload displaced by a corruption
	last int
}

func (b *byzantinePlan) Name() string { return fmt.Sprintf("byzantine:%g", b.p) }

func (b *byzantinePlan) Begin(top Topology) {
	b.rng = rand.New(rand.NewSource(b.seed))
	b.prev = make([]string, top.Links())
	b.last = 0
}

func (b *byzantinePlan) Step(t int, view View, dec *Decision) { b.last = t }

func (b *byzantinePlan) Filter(t int, link int) Fate {
	if t > b.horizon {
		return FateDeliver
	}
	if b.rng.Float64() < b.p {
		return FateCorrupt
	}
	return FateDeliver
}

// Corrupt rewrites msg with one of three seeded corruptors. The displaced
// genuine payload is remembered per link so a later replay corruption can
// re-deliver it stale. Every branch is a deterministic function of the
// (seeded) RNG stream and the genuine payload, so replays stay
// bit-identical.
func (b *byzantinePlan) Corrupt(t int, link int, msg string) string {
	defer func() { b.prev[link] = msg }()
	switch b.rng.Intn(3) {
	case 0: // bit flip — on m0, fabricate a junk byte (noise from silence)
		if msg == "" {
			return string([]byte{byte(33 + b.rng.Intn(94))})
		}
		buf := []byte(msg)
		buf[b.rng.Intn(len(buf))] ^= 1 << uint(b.rng.Intn(8))
		return string(buf)
	case 1: // swap with m0 — corruption to silence
		return ""
	default: // replay of the previously displaced payload (m0 if none)
		return b.prev[link]
	}
}

func (b *byzantinePlan) Settled() bool { return b.last >= b.horizon }

// Partition returns the seeded plan that cuts a seeded island of k nodes
// from the rest of the graph and heals the cut at a seeded step in the
// upper half of the default horizon. The cut is correlated per-link
// omission: every message crossing the boundary is delivered as m0 in
// both directions, so partitioned Kahn frontiers still see one delivery
// per in-port and never starve, while no information crosses until the
// heal. Healed cut links are reported through the Healer interface.
func Partition(seed int64, k int) Plan { return PartitionFor(seed, k, DefaultHorizon) }

// PartitionFor is Partition with an explicit horizon; the heal step is
// drawn from the upper half of the horizon, so the plan is settled (and
// fixpoint detection unblocked) from the heal onward.
func PartitionFor(seed int64, k, horizon int) Plan {
	if k < 1 {
		k = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	return &partitionPlan{seed: seed, k: k, horizon: horizon}
}

type partitionPlan struct {
	seed    int64
	k       int
	horizon int

	cut      []bool
	cutCount int
	healAt   int
	healed   int64
	last     int
}

func (p *partitionPlan) Name() string { return fmt.Sprintf("partition:%d", p.k) }

func (p *partitionPlan) Begin(top Topology) {
	p.last = 0
	p.healed = 0
	rng := rand.New(rand.NewSource(p.seed))
	upper := p.horizon - p.horizon/2
	p.healAt = p.horizon/2 + 1 + rng.Intn(max(1, upper))
	if p.healAt > p.horizon {
		p.healAt = p.horizon
	}
	n := top.Nodes()
	p.cut = make([]bool, top.Links())
	p.cutCount = 0
	if n < 2 {
		return
	}
	// Grow the island by BFS from a seeded root, visiting out-neighbours in
	// global link order, so the cut is a connected chunk of the graph (the
	// realistic shape of a network partition) and fully seed-deterministic.
	adj := make([][]int, n)
	for l := 0; l < top.Links(); l++ {
		src := top.LinkSrc(l)
		adj[src] = append(adj[src], top.LinkDst(l))
	}
	size := min(p.k, n-1)
	island := make([]bool, n)
	queue := []int{rng.Intn(n)}
	island[queue[0]] = true
	got := 1
	for len(queue) > 0 && got < size {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if island[w] || got >= size {
				continue
			}
			island[w] = true
			got++
			queue = append(queue, w)
		}
	}
	for l := range p.cut {
		if island[top.LinkSrc(l)] != island[top.LinkDst(l)] {
			p.cut[l] = true
			p.cutCount++
		}
	}
}

func (p *partitionPlan) Step(t int, view View, dec *Decision) {
	p.last = t
	if t >= p.healAt {
		p.healed = int64(p.cutCount)
	}
}

func (p *partitionPlan) Filter(t int, link int) Fate {
	if t >= p.healAt || !p.cut[link] {
		return FateDeliver
	}
	return FateDrop
}

// Healed reports how many cut links have been restored (all of them, once
// the heal step is reached).
func (p *partitionPlan) Healed() int64 { return p.healed }

func (p *partitionPlan) Settled() bool { return p.last >= p.healAt }

// Retransmit returns the seeded plan that gives senders a bounded retry
// layer: when a node recovers from a crash, each of its in-links is
// scheduled for up to r retransmissions of the sender's current steady
// message, spread by seeded per-link backoff. The recovering node
// re-receives its frontier instead of waiting for neighbours to fire
// again, so it rejoins cleanly. On its own the plan injects nothing —
// compose it with a crash or pause plan. Backoff delays are drawn from
// the plan's RNG in ascending global link order on the engine's
// coordinator, so sharded runs stay bit-identical.
func Retransmit(seed int64, r int) Plan { return RetransmitFor(seed, r, DefaultHorizon) }

// RetransmitFor is Retransmit with an explicit horizon; retransmissions
// scheduled past the horizon are clamped to it, so the plan settles with
// the horizon.
func RetransmitFor(seed int64, r, horizon int) Plan {
	if r < 1 {
		r = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	return &retransmitPlan{seed: seed, r: r, horizon: horizon}
}

// resendEvent is one scheduled retransmission.
type resendEvent struct {
	link int
	at   int
}

type retransmitPlan struct {
	seed    int64
	r       int
	horizon int

	rng       *rand.Rand
	prevAlive []bool
	inLinks   [][]int // per node, its in-links in ascending global link order
	pending   []resendEvent
	last      int
}

func (r *retransmitPlan) Name() string { return fmt.Sprintf("retransmit:%d", r.r) }

func (r *retransmitPlan) Begin(top Topology) {
	r.rng = rand.New(rand.NewSource(r.seed))
	r.last = 0
	r.pending = r.pending[:0]
	n := top.Nodes()
	r.prevAlive = make([]bool, n)
	for v := range r.prevAlive {
		r.prevAlive[v] = true
	}
	r.inLinks = make([][]int, n)
	for l := 0; l < top.Links(); l++ {
		dst := top.LinkDst(l)
		r.inLinks[dst] = append(r.inLinks[dst], l)
	}
}

func (r *retransmitPlan) Step(t int, view View, dec *Decision) {
	r.last = t
	n := len(r.prevAlive)
	// Observe recoveries (false→true transitions since the previous step)
	// and schedule the retry bursts, nodes ascending, links ascending, so
	// the RNG stream is consumed in a replay-stable order.
	for v := 0; v < n; v++ {
		alive := view.Alive(v)
		if alive && !r.prevAlive[v] && t <= r.horizon {
			for _, l := range r.inLinks[v] {
				at := t
				for i := 0; i < r.r; i++ {
					at += 1 + r.rng.Intn(2<<uint(i))
					if at > r.horizon {
						break
					}
					r.pending = append(r.pending, resendEvent{link: l, at: at})
				}
			}
		}
		r.prevAlive[v] = alive
	}
	// Fire the retransmissions due this step.
	kept := r.pending[:0]
	for _, ev := range r.pending {
		if ev.at <= t {
			dec.Resend[ev.link] = true
			continue
		}
		kept = append(kept, ev)
	}
	r.pending = kept
}

func (r *retransmitPlan) Filter(t int, link int) Fate { return FateDeliver }

func (r *retransmitPlan) Settled() bool {
	return r.last >= r.horizon && len(r.pending) == 0
}

// Compose combines plans into one: crash/recovery/retransmit requests are
// unioned and a delivery's fate is the worst any component assigns (drop
// beats corrupt beats dup beats deliver). Every component is consulted for
// every delivery, so each keeps its own deterministic random stream. When
// a corrupting component wins, the composite remembers it so the engine's
// follow-up Corrupt call reaches the right corruptor. Composing several
// crash plans is allowed but their downtimes may interleave on a shared
// victim; the engine resolves overlaps by ignoring redundant requests.
func Compose(plans ...Plan) Plan {
	flat := make([]Plan, 0, len(plans))
	for _, p := range plans {
		if p == nil {
			continue
		}
		if c, ok := p.(*composite); ok {
			flat = append(flat, c.plans...)
			continue
		}
		flat = append(flat, p)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	c := &composite{plans: flat}
	for _, p := range flat {
		if _, ok := p.(Corrupter); ok {
			c.canCorrupt = true
		}
	}
	return c
}

type composite struct {
	plans      []Plan
	canCorrupt bool
	// hit is the component whose FateCorrupt won the most recent Filter;
	// the engine's Corrupt follow-up happens immediately after Filter on
	// the same goroutine (see Corrupter), so a single slot suffices.
	hit Corrupter
}

func (c *composite) Name() string {
	names := make([]string, len(c.plans))
	for i, p := range c.plans {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

func (c *composite) Begin(top Topology) {
	c.hit = nil
	for _, p := range c.plans {
		p.Begin(top)
	}
}

func (c *composite) Step(t int, view View, dec *Decision) {
	for _, p := range c.plans {
		p.Step(t, view, dec)
	}
}

func (c *composite) Filter(t int, link int) Fate {
	worst := FateDeliver
	c.hit = nil
	for _, p := range c.plans {
		switch p.Filter(t, link) {
		case FateDrop:
			worst = FateDrop
		case FateCorrupt:
			if worst != FateDrop {
				worst = FateCorrupt
				c.hit = p.(Corrupter)
			}
		case FateDup:
			if worst == FateDeliver {
				worst = FateDup
			}
		}
	}
	if worst != FateCorrupt {
		c.hit = nil
	}
	return worst
}

// Corrupt delegates to the component whose FateCorrupt won the preceding
// Filter call.
func (c *composite) Corrupt(t int, link int, msg string) string {
	return c.hit.Corrupt(t, link, msg)
}

// Healed sums the healed-link counts of every partition component.
func (c *composite) Healed() int64 {
	var total int64
	for _, p := range c.plans {
		if h, ok := p.(Healer); ok {
			total += h.Healed()
		}
	}
	return total
}

func (c *composite) Settled() bool {
	for _, p := range c.plans {
		if !p.Settled() {
			return false
		}
	}
	return true
}
