package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// faultComponents is the registry behind Parse: one entry per component
// name, carrying the advertised form and the parser for the component's
// leading argument. ValidSpecs and the unknown-fault error enumerate it
// with sorted keys, so the listings are deterministic by construction.
var faultComponents = map[string]struct {
	form  string
	parse func(arg, s string, seed int64, horizon int) (Plan, error)
}{
	"drop": {"drop:P", func(arg, s string, seed int64, horizon int) (Plan, error) {
		p, err := probArg(arg, s)
		if err != nil {
			return nil, err
		}
		return DropFor(seed, p, horizon), nil
	}},
	"dup": {"dup:P", func(arg, s string, seed int64, horizon int) (Plan, error) {
		p, err := probArg(arg, s)
		if err != nil {
			return nil, err
		}
		return DupFor(seed, p, horizon), nil
	}},
	"byzantine": {"byzantine:P", func(arg, s string, seed int64, horizon int) (Plan, error) {
		p, err := probArg(arg, s)
		if err != nil {
			return nil, err
		}
		return ByzantineFor(seed, p, horizon), nil
	}},
	"crash": {"crash:K", func(arg, s string, seed int64, horizon int) (Plan, error) {
		k, err := countArg(arg, s, "crash count", "K")
		if err != nil {
			return nil, err
		}
		return CrashRecoverFor(seed, k, true, horizon), nil
	}},
	"pause": {"pause:K", func(arg, s string, seed int64, horizon int) (Plan, error) {
		k, err := countArg(arg, s, "crash count", "K")
		if err != nil {
			return nil, err
		}
		return CrashRecoverFor(seed, k, false, horizon), nil
	}},
	"crashstop": {"crashstop:K", func(arg, s string, seed int64, horizon int) (Plan, error) {
		k, err := countArg(arg, s, "crash count", "K")
		if err != nil {
			return nil, err
		}
		return CrashStopFor(seed, k, horizon), nil
	}},
	"partition": {"partition:K", func(arg, s string, seed int64, horizon int) (Plan, error) {
		k, err := countArg(arg, s, "island size", "K")
		if err != nil {
			return nil, err
		}
		return PartitionFor(seed, k, horizon), nil
	}},
	"retransmit": {"retransmit:R", func(arg, s string, seed int64, horizon int) (Plan, error) {
		r, err := countArg(arg, s, "retry count", "R")
		if err != nil {
			return nil, err
		}
		return RetransmitFor(seed, r, horizon), nil
	}},
	"adversary": {"adversary:B", func(arg, s string, seed int64, horizon int) (Plan, error) {
		b, err := countArg(arg, s, "budget", "B")
		if err != nil {
			return nil, err
		}
		return AdversaryFor(seed, b, horizon), nil
	}},
}

// faultAliases maps alternative spellings to registry names.
var faultAliases = map[string]string{
	"crash-stop": "crashstop",
}

// ValidSpecs lists the -faults spellings accepted by Parse in sorted
// order, for error messages and usage strings.
func ValidSpecs() string {
	forms := make([]string, 0, len(faultComponents))
	for _, c := range faultComponents {
		forms = append(forms, c.form)
	}
	sort.Strings(forms)
	return strings.Join(forms, " | ") + " — each takes optional ,SEED[,HORIZON]; compose with '+'"
}

// Parse builds a fault plan from its textual specification. Components are
// composed with '+'; each is NAME:ARG[,SEED[,HORIZON]], where SEED
// overrides the component's seed and HORIZON overrides the default fault
// horizon (DefaultHorizon steps). Components without an explicit SEED get
// distinct seeds derived from the one passed to Parse (component i uses
// seed+i): identical seeds would flip perfectly correlated coins, making
// e.g. drop:P+dup:P drop exactly the messages it would have duplicated.
// Supported components:
//
//	drop:P       — deliver m0 instead of the message with probability P
//	dup:P        — duplicate the delivered message with probability P
//	byzantine:P  — corrupt the delivered payload with probability P
//	               (seeded bit-flip / swap-with-m0 / replay corruptors)
//	crash:K      — K crash-recover events, recovery resets to the initial state
//	pause:K      — K crash-recover events, recovery resumes the frozen state
//	crashstop:K  — K permanent crashes
//	partition:K  — cut a seeded K-node island off the graph, heal it at a
//	               seeded step in the upper half of the horizon
//	retransmit:R — up to R seeded-backoff retransmissions per in-link of
//	               every recovering node (compose with crash/pause)
//	adversary:B  — budget-B crash-reset + omission adversary on the
//	               highest-degree nodes
//
// The empty string (and "none") parses to a nil plan: no faults.
func Parse(s string, seed int64) (Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	parts := strings.Split(s, "+")
	plans := make([]Plan, 0, len(parts))
	for i, part := range parts {
		p, err := parseOne(part, seed+int64(i))
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return Compose(plans...), nil
}

func parseOne(s string, seed int64) (Plan, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	args := strings.Split(arg, ",")
	horizon := DefaultHorizon
	if len(args) > 3 {
		return nil, fmt.Errorf("fault: too many arguments in %q (want NAME:ARG[,SEED[,HORIZON]])", s)
	}
	if len(args) >= 2 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad seed %q in %q", args[1], s)
		}
		seed = v
	}
	if len(args) == 3 {
		v, err := strconv.Atoi(args[2])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("fault: bad horizon %q in %q (want ≥ 1 steps)", args[2], s)
		}
		horizon = v
	}
	if canonical, ok := faultAliases[name]; ok {
		name = canonical
	}
	c, ok := faultComponents[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown fault %q (want %s)", s, ValidSpecs())
	}
	return c.parse(args[0], s, seed, horizon)
}

// probArg parses the probability argument of drop/dup/byzantine.
func probArg(arg, s string) (float64, error) {
	p, err := strconv.ParseFloat(arg, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("fault: bad probability %q in %q (want 0 ≤ P ≤ 1)", arg, s)
	}
	return p, nil
}

// countArg parses a positive integer argument, naming it in errors.
func countArg(arg, s, what, letter string) (int, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("fault: bad %s %q in %q (want %s ≥ 1)", what, arg, s, letter)
	}
	return n, nil
}

// FlagSeedUsed reports whether Parse(s, seed) actually consumes the seed
// argument — i.e. whether a -fault-seed flag has any effect on the spec.
// A component with an embedded ,SEED overrides the flag, so a spec whose
// components all embed seeds replays identically under every -fault-seed.
// Only meaningful for specs Parse accepts.
func FlagSeedUsed(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return false
	}
	for _, part := range strings.Split(s, "+") {
		arg := ""
		if i := strings.IndexByte(part, ':'); i >= 0 {
			arg = part[i+1:]
		}
		if len(strings.Split(arg, ",")) < 2 {
			return true // no embedded seed: this component draws from the flag
		}
	}
	return false
}

// UsesSeed reports whether the plan's faults depend on the seed passed to
// Parse — i.e. whether a -fault-seed flag is meaningful with it. Every
// seeded generator does; only the explicit CrashAt plan does not.
func UsesSeed(p Plan) bool {
	switch p := p.(type) {
	case nil:
		return false
	case *crashPlan:
		return p.fixed == nil
	case *composite:
		for _, child := range p.plans {
			if UsesSeed(child) {
				return true
			}
		}
		return false
	default:
		return true
	}
}
