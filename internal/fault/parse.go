package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidSpecs lists the -faults spellings accepted by Parse, for error
// messages and usage strings.
const ValidSpecs = "drop:P | dup:P | byzantine:P | crash:K | pause:K | crashstop:K | partition:K | retransmit:R | adversary:B — each takes optional ,SEED[,HORIZON]; compose with '+'"

// Parse builds a fault plan from its textual specification. Components are
// composed with '+'; each is NAME:ARG[,SEED[,HORIZON]], where SEED
// overrides the component's seed and HORIZON overrides the default fault
// horizon (DefaultHorizon steps). Components without an explicit SEED get
// distinct seeds derived from the one passed to Parse (component i uses
// seed+i): identical seeds would flip perfectly correlated coins, making
// e.g. drop:P+dup:P drop exactly the messages it would have duplicated.
// Supported components:
//
//	drop:P       — deliver m0 instead of the message with probability P
//	dup:P        — duplicate the delivered message with probability P
//	byzantine:P  — corrupt the delivered payload with probability P
//	               (seeded bit-flip / swap-with-m0 / replay corruptors)
//	crash:K      — K crash-recover events, recovery resets to the initial state
//	pause:K      — K crash-recover events, recovery resumes the frozen state
//	crashstop:K  — K permanent crashes
//	partition:K  — cut a seeded K-node island off the graph, heal it at a
//	               seeded step in the upper half of the horizon
//	retransmit:R — up to R seeded-backoff retransmissions per in-link of
//	               every recovering node (compose with crash/pause)
//	adversary:B  — budget-B crash-reset + omission adversary on the
//	               highest-degree nodes
//
// The empty string (and "none") parses to a nil plan: no faults.
func Parse(s string, seed int64) (Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	parts := strings.Split(s, "+")
	plans := make([]Plan, 0, len(parts))
	for i, part := range parts {
		p, err := parseOne(part, seed+int64(i))
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return Compose(plans...), nil
}

func parseOne(s string, seed int64) (Plan, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	args := strings.Split(arg, ",")
	horizon := DefaultHorizon
	if len(args) > 3 {
		return nil, fmt.Errorf("fault: too many arguments in %q (want NAME:ARG[,SEED[,HORIZON]])", s)
	}
	if len(args) >= 2 {
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad seed %q in %q", args[1], s)
		}
		seed = v
	}
	if len(args) == 3 {
		v, err := strconv.Atoi(args[2])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("fault: bad horizon %q in %q (want ≥ 1 steps)", args[2], s)
		}
		horizon = v
	}
	switch name {
	case "drop", "dup", "byzantine":
		p, err := strconv.ParseFloat(args[0], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("fault: bad probability %q in %q (want 0 ≤ P ≤ 1)", args[0], s)
		}
		switch name {
		case "drop":
			return DropFor(seed, p, horizon), nil
		case "dup":
			return DupFor(seed, p, horizon), nil
		default:
			return ByzantineFor(seed, p, horizon), nil
		}
	case "partition":
		k, err := strconv.Atoi(args[0])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("fault: bad island size %q in %q (want K ≥ 1)", args[0], s)
		}
		return PartitionFor(seed, k, horizon), nil
	case "retransmit":
		r, err := strconv.Atoi(args[0])
		if err != nil || r < 1 {
			return nil, fmt.Errorf("fault: bad retry count %q in %q (want R ≥ 1)", args[0], s)
		}
		return RetransmitFor(seed, r, horizon), nil
	case "crash", "pause", "crashstop", "crash-stop":
		k, err := strconv.Atoi(args[0])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("fault: bad crash count %q in %q (want K ≥ 1)", args[0], s)
		}
		switch name {
		case "crash":
			return CrashRecoverFor(seed, k, true, horizon), nil
		case "pause":
			return CrashRecoverFor(seed, k, false, horizon), nil
		default:
			return CrashStopFor(seed, k, horizon), nil
		}
	case "adversary":
		b, err := strconv.Atoi(args[0])
		if err != nil || b < 1 {
			return nil, fmt.Errorf("fault: bad budget %q in %q (want B ≥ 1)", args[0], s)
		}
		return AdversaryFor(seed, b, horizon), nil
	default:
		return nil, fmt.Errorf("fault: unknown fault %q (want %s)", s, ValidSpecs)
	}
}

// FlagSeedUsed reports whether Parse(s, seed) actually consumes the seed
// argument — i.e. whether a -fault-seed flag has any effect on the spec.
// A component with an embedded ,SEED overrides the flag, so a spec whose
// components all embed seeds replays identically under every -fault-seed.
// Only meaningful for specs Parse accepts.
func FlagSeedUsed(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return false
	}
	for _, part := range strings.Split(s, "+") {
		arg := ""
		if i := strings.IndexByte(part, ':'); i >= 0 {
			arg = part[i+1:]
		}
		if len(strings.Split(arg, ",")) < 2 {
			return true // no embedded seed: this component draws from the flag
		}
	}
	return false
}

// UsesSeed reports whether the plan's faults depend on the seed passed to
// Parse — i.e. whether a -fault-seed flag is meaningful with it. Every
// seeded generator does; only the explicit CrashAt plan does not.
func UsesSeed(p Plan) bool {
	switch p := p.(type) {
	case nil:
		return false
	case *crashPlan:
		return p.fixed == nil
	case *composite:
		for _, child := range p.plans {
			if UsesSeed(child) {
				return true
			}
		}
		return false
	default:
		return true
	}
}
