package fault

import (
	"strings"
	"testing"
)

// fakeTopology is a star-shaped test topology: node 0 is the centre with
// degree n-1, every other node a leaf. Links alternate leaf→centre and
// centre→leaf as (src, dst) pairs.
type fakeTopology struct {
	n     int
	links [][2]int
}

func starTopology(leaves int) *fakeTopology {
	t := &fakeTopology{n: leaves + 1}
	for v := 1; v <= leaves; v++ {
		t.links = append(t.links, [2]int{v, 0}, [2]int{0, v})
	}
	return t
}

func (t *fakeTopology) Nodes() int { return t.n }
func (t *fakeTopology) Links() int { return len(t.links) }
func (t *fakeTopology) Degree(v int) int {
	if v == 0 {
		return t.n - 1
	}
	return 1
}
func (t *fakeTopology) LinkSrc(l int) int { return t.links[l][0] }
func (t *fakeTopology) LinkDst(l int) int { return t.links[l][1] }

// fakeView implements View over a fakeTopology with everyone alive.
type fakeView struct{ top *fakeTopology }

func (v fakeView) Nodes() int         { return v.top.Nodes() }
func (v fakeView) Links() int         { return v.top.Links() }
func (v fakeView) Fires(int) int64    { return 0 }
func (v fakeView) Halted(int) bool    { return false }
func (v fakeView) InFlight(int) int   { return 1 }
func (v fakeView) OldestBorn(int) int { return 0 }
func (v fakeView) Alive(int) bool     { return true }

// replay drives a plan for steps steps over the topology and returns every
// per-step decision plus every per-delivery fate (one delivery per link
// per step), as a reproducibility fingerprint. Corrupted deliveries fold
// the replacement payload into the fate stream so corruptor randomness is
// fingerprinted too; resend requests are merged into the recovery stream
// (offset by the link id) so retransmit plans are covered by the same
// determinism checks.
func replay(p Plan, top *fakeTopology, steps int) (fates []Fate, crashes, recoveries []int) {
	p.Begin(top)
	view := fakeView{top: top}
	dec := NewDecision(top.Nodes(), top.Links())
	corrupter, _ := p.(Corrupter)
	for t := 1; t <= steps; t++ {
		dec.Reset()
		p.Step(t, view, dec)
		for v, c := range dec.Crash {
			if c {
				crashes = append(crashes, t*1000+v)
			}
		}
		for v, k := range dec.Recover {
			if k != RecoverNone {
				recoveries = append(recoveries, t*1000+v)
			}
		}
		for l, rs := range dec.Resend {
			if rs {
				recoveries = append(recoveries, -(t*1000 + l))
			}
		}
		for l := 0; l < top.Links(); l++ {
			f := p.Filter(t, l)
			if f == FateCorrupt {
				msg := corrupter.Corrupt(t, l, "payload")
				for _, b := range []byte(msg) {
					f += Fate(b) << 2
				}
			}
			fates = append(fates, f)
		}
	}
	return fates, crashes, recoveries
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFates(a, b []Fate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSeededDeterminism: the same (spec, seed) replays identical faults;
// a different seed produces different ones.
func TestSeededDeterminism(t *testing.T) {
	top := starTopology(6)
	specs := []string{
		"drop:0.5", "dup:0.5", "crash:3", "pause:2", "crashstop:2",
		"adversary:2", "drop:0.4+crash:2+dup:0.3",
		"byzantine:0.5", "partition:2", "crash:2+retransmit:2",
		"byzantine:0.3+partition:3+drop:0.2",
	}
	for _, spec := range specs {
		mk := func(seed int64) Plan {
			p, err := Parse(spec, seed)
			if err != nil {
				t.Fatalf("Parse(%q): %v", spec, err)
			}
			return p
		}
		f1, c1, r1 := replay(mk(7), top, 600)
		f2, c2, r2 := replay(mk(7), top, 600)
		if !equalFates(f1, f2) || !equalInts(c1, c2) || !equalInts(r1, r2) {
			t.Errorf("%s: same seed diverged", spec)
		}
		// Re-Begin on the same instance must reset fully.
		p := mk(7)
		f3, c3, r3 := replay(p, top, 600)
		f4, c4, r4 := replay(p, top, 600)
		if !equalFates(f3, f4) || !equalInts(c3, c4) || !equalInts(r3, r4) {
			t.Errorf("%s: Begin did not reset the plan", spec)
		}
		if !equalFates(f1, f3) {
			t.Errorf("%s: fresh instance and re-Begin disagree", spec)
		}
	}
}

// TestDropDupFates: a p=1 plan faults every delivery within its horizon
// and none after; p=0 never faults.
func TestDropDupFates(t *testing.T) {
	top := starTopology(3)
	for _, tc := range []struct {
		plan Plan
		want Fate
	}{
		{DropFor(3, 1, 50), FateDrop},
		{DupFor(3, 1, 50), FateDup},
	} {
		fates, _, _ := replay(tc.plan, top, 60)
		perStep := top.Links()
		for i, f := range fates {
			step := i/perStep + 1
			want := tc.want
			if step > 50 {
				want = FateDeliver
			}
			if f != want {
				t.Fatalf("%s: step %d delivery fate = %v, want %v", tc.plan.Name(), step, f, want)
			}
		}
	}
	fates, _, _ := replay(DropFor(3, 0, 50), top, 60)
	for _, f := range fates {
		if f != FateDeliver {
			t.Fatalf("p=0 plan faulted a delivery")
		}
	}
}

// TestCrashPlansSettle: crash events all fire within the horizon, pair up
// with recoveries (for recovering plans), and the plan reports Settled
// exactly when no further event is pending.
func TestCrashPlansSettle(t *testing.T) {
	top := starTopology(6)
	for _, spec := range []string{"crash:3", "pause:3", "crashstop:3", "adversary:3"} {
		p, err := Parse(spec, 11)
		if err != nil {
			t.Fatal(err)
		}
		_, crashes, recoveries := replay(p, top, 2*DefaultHorizon)
		if len(crashes) != 3 {
			t.Errorf("%s: %d crashes, want 3", spec, len(crashes))
		}
		wantRec := 3
		if spec == "crashstop:3" {
			wantRec = 0
		}
		if len(recoveries) != wantRec {
			t.Errorf("%s: %d recoveries, want %d", spec, len(recoveries), wantRec)
		}
		if !p.Settled() {
			t.Errorf("%s: not settled after 2×horizon steps", spec)
		}
	}
}

// TestUnsettledBeforeHorizon: a fresh plan is not settled, so the engine
// cannot prematurely declare a fixpoint.
func TestUnsettledBeforeHorizon(t *testing.T) {
	for _, spec := range []string{"drop:0.5", "crash:2", "adversary:1", "byzantine:0.5", "partition:2"} {
		p, err := Parse(spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		p.Begin(starTopology(4))
		if p.Settled() {
			t.Errorf("%s: settled before any step", spec)
		}
	}
}

// TestAdversaryTargetsHighDegree: on a star the highest-degree node is the
// centre, so every adversary crash must hit node 0.
func TestAdversaryTargetsHighDegree(t *testing.T) {
	top := starTopology(8)
	_, crashes, _ := replay(Adversary(9, 2), top, 2*DefaultHorizon)
	if len(crashes) != 2 {
		t.Fatalf("adversary:2 produced %d crashes, want 2", len(crashes))
	}
	for _, c := range crashes {
		if c%1000 != 0 {
			t.Errorf("adversary crashed node %d, want the centre (0)", c%1000)
		}
	}
}

// TestAdversaryDropsOnlyHubLinks: omissions stay on links incident to the
// targeted hubs.
func TestAdversaryDropsOnlyHubLinks(t *testing.T) {
	// Two disjoint stars glued into one topology: hub 0 with 5 leaves, a
	// path-ish pair (6,7) of degree-1 nodes linked to each other.
	top := &fakeTopology{n: 8}
	for v := 1; v <= 5; v++ {
		top.links = append(top.links, [2]int{v, 0}, [2]int{0, v})
	}
	top.links = append(top.links, [2]int{6, 7}, [2]int{7, 6})
	p := Adversary(3, 1).(*adversaryPlan)
	p.Begin(top)
	for t2 := 1; t2 <= DefaultHorizon; t2++ {
		for l := 0; l < top.Links(); l++ {
			if f := p.Filter(t2, l); f == FateDrop && !p.hubLink[l] {
				t.Fatalf("adversary dropped on non-hub link %d", l)
			}
		}
	}
	if p.hubLink[len(top.links)-1] || p.hubLink[len(top.links)-2] {
		t.Fatal("links between degree-1 nodes marked as hub links")
	}
}

// TestCrashAt pins the explicit unit-test plan: crash at the exact step,
// recovery exactly down steps later, never settled in between.
func TestCrashAt(t *testing.T) {
	p := CrashAt(2, 5, 3, RecoverReset)
	top := starTopology(4)
	_, crashes, recoveries := replay(p, top, 20)
	if !equalInts(crashes, []int{5*1000 + 2}) {
		t.Errorf("crashes = %v, want node 2 at step 5", crashes)
	}
	if !equalInts(recoveries, []int{8*1000 + 2}) {
		t.Errorf("recoveries = %v, want node 2 at step 8", recoveries)
	}
	if !p.Settled() {
		t.Error("CrashAt not settled after its event")
	}
	forever := CrashAt(1, 3, 0, RecoverReset)
	_, crashes, recoveries = replay(forever, top, 20)
	if len(crashes) != 1 || len(recoveries) != 0 {
		t.Errorf("down≤0 CrashAt: crashes=%v recoveries=%v, want one permanent crash", crashes, recoveries)
	}
}

// TestComposeFates: drop beats dup beats deliver, and composition flattens.
func TestComposeFates(t *testing.T) {
	top := starTopology(2)
	p := Compose(DupFor(1, 1, 10), DropFor(2, 1, 10))
	p.Begin(top)
	if f := p.Filter(1, 0); f != FateDrop {
		t.Errorf("drop+dup composite fate = %v, want drop", f)
	}
	if got := Compose(Compose(Drop(1, 0.5), Dup(2, 0.5)), CrashStop(3, 1)).(*composite); len(got.plans) != 3 {
		t.Errorf("nested Compose did not flatten: %d components", len(got.plans))
	}
	if Compose() != nil {
		t.Error("empty Compose should be nil (no faults)")
	}
	single := Drop(1, 0.5)
	if Compose(single) != single {
		t.Error("single-plan Compose should return the plan itself")
	}
}

// TestParse covers spellings, seeds, horizons and errors.
func TestParse(t *testing.T) {
	for _, tc := range []struct{ spec, name string }{
		{"drop:0.25", "drop:0.25"},
		{"dup:0.5,9", "dup:0.5"},
		{"crash:2", "crash:2"},
		{"pause:1", "pause:1"},
		{"crashstop:2,3,100", "crashstop:2"},
		{"adversary:4", "adversary:4"},
		{"drop:0.1+crash:1,7", "drop:0.1+crash:1"},
		{"byzantine:0.25", "byzantine:0.25"},
		{"partition:3,5", "partition:3"},
		{"retransmit:2,5,100", "retransmit:2"},
		{"byzantine:0.2+partition:2+crash:1+retransmit:1", "byzantine:0.2+partition:2+crash:1+retransmit:1"},
	} {
		p, err := Parse(tc.spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if p.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, p.Name(), tc.name)
		}
	}
	for _, none := range []string{"", "none", "  "} {
		if p, err := Parse(none, 1); err != nil || p != nil {
			t.Errorf("Parse(%q) = (%v, %v), want nil plan", none, p, err)
		}
	}
	for _, bad := range []string{
		"chaos", "drop", "drop:2", "drop:-1", "drop:0.5,x", "drop:0.5,1,0",
		"crash:0", "crash:x", "adversary:0", "drop:0.5,1,2,3", "drop:0.5+chaos",
		"byzantine:1.5", "byzantine:x", "partition:0", "partition:x",
		"retransmit:0", "retransmit:-1",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	if _, err := Parse("chaos", 1); err == nil || !strings.Contains(err.Error(), "drop:P") {
		t.Errorf("unknown-fault error should list valid specs, got %v", err)
	}
}

// TestUsesSeed: every seeded generator reports it; CrashAt does not.
func TestUsesSeed(t *testing.T) {
	for _, spec := range []string{
		"drop:0.5", "dup:0.5", "crash:1", "crashstop:1", "adversary:1",
		"byzantine:0.5", "partition:2", "retransmit:1",
	} {
		p, err := Parse(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !UsesSeed(p) {
			t.Errorf("UsesSeed(%s) = false, want true", spec)
		}
	}
	if UsesSeed(CrashAt(0, 1, 1, RecoverReset)) {
		t.Error("UsesSeed(CrashAt) = true, want false")
	}
	if UsesSeed(nil) {
		t.Error("UsesSeed(nil) = true, want false")
	}
	if !UsesSeed(Compose(CrashAt(0, 1, 1, RecoverReset), Drop(1, 0.5))) {
		t.Error("composite with a seeded component should use the seed")
	}
}

// TestCrashEventsWithinHorizon pins the documented contract: every crash
// and recovery of a seeded plan happens at steps 1..horizon, for every
// seed (accumulated event spacing used to overshoot for late events).
func TestCrashEventsWithinHorizon(t *testing.T) {
	top := starTopology(6)
	const horizon = 100
	for seed := int64(1); seed <= 500; seed++ {
		for _, p := range []Plan{
			CrashRecoverFor(seed, 4, true, horizon),
			CrashStopFor(seed, 4, horizon),
			AdversaryFor(seed, 4, horizon),
		} {
			p.Begin(top)
			var events []crashEvent
			switch p := p.(type) {
			case *crashPlan:
				events = p.events
			case *adversaryPlan:
				events = p.crashes.events
			}
			for _, ev := range events {
				if ev.at < 1 || ev.at > horizon || ev.up > horizon {
					t.Fatalf("seed %d %s: event at=%d up=%d escapes horizon %d",
						seed, p.Name(), ev.at, ev.up, horizon)
				}
			}
		}
	}
}

// TestFlagSeedUsed: the flag seed is consumed exactly when some component
// lacks an embedded ,SEED.
func TestFlagSeedUsed(t *testing.T) {
	for spec, want := range map[string]bool{
		"":                     false,
		"none":                 false,
		"drop:0.5":             true,
		"drop:0.5,7":           false,
		"drop:0.5,7,100":       false,
		"drop:0.5,7+crash:2":   true,
		"drop:0.5,7+crash:2,9": false,
		"adversary:3":          true,
	} {
		if got := FlagSeedUsed(spec); got != want {
			t.Errorf("FlagSeedUsed(%q) = %v, want %v", spec, got, want)
		}
	}
}
