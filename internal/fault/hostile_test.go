package fault

import (
	"testing"
)

// aliveView is a fakeView with mutable liveness, for driving the
// retransmit plan's recovery detection by hand.
type aliveView struct {
	fakeView
	alive []bool
}

func (v *aliveView) Alive(n int) bool { return v.alive[n] }

// TestByzantineCorruptsEveryDelivery: p=1 corrupts every delivery within
// the horizon and none after, and the corruptors behave as documented —
// swap-with-m0 yields m0, bit flips differ from the genuine payload in
// exactly one bit, replay re-delivers a previously displaced payload, and
// corrupting silence fabricates noise.
func TestByzantineCorruptsEveryDelivery(t *testing.T) {
	top := starTopology(3)
	p := ByzantineFor(5, 1, 50).(*byzantinePlan)
	p.Begin(top)
	sawFlip, sawSilence, sawReplay := false, false, false
	displaced := make(map[string]bool)
	for step := 1; step <= 60; step++ {
		for l := 0; l < top.Links(); l++ {
			f := p.Filter(step, l)
			if step > 50 {
				if f != FateDeliver {
					t.Fatalf("step %d past horizon: fate %v", step, f)
				}
				continue
			}
			if f != FateCorrupt {
				t.Fatalf("step %d: fate %v, want corrupt at p=1", step, f)
			}
			genuine := "(pay,load)"
			got := p.Corrupt(step, l, genuine)
			switch {
			case got == "":
				sawSilence = true
			case got == genuine || displaced[got]:
				sawReplay = true
			default:
				diff := 0
				if len(got) == len(genuine) {
					for i := range got {
						for b := got[i] ^ genuine[i]; b != 0; b &= b - 1 {
							diff++
						}
					}
				} else {
					diff = -1
				}
				if diff != 1 {
					t.Fatalf("corruption %q is neither m0, a replay, nor a one-bit flip of %q", got, genuine)
				}
				sawFlip = true
			}
			displaced[genuine] = true
		}
	}
	if !sawFlip || !sawSilence || !sawReplay {
		t.Errorf("corruptor coverage: flip=%v silence=%v replay=%v, want all three", sawFlip, sawSilence, sawReplay)
	}
	// Noise from silence: the bit-flip corruptor fabricates a printable
	// junk byte when the genuine payload is m0. Over many draws on a fresh
	// plan the flip mode must fire and must never panic or return garbage
	// outside the printable range.
	fresh := ByzantineFor(5, 1, 50).(*byzantinePlan)
	fresh.Begin(top)
	sawJunk := false
	for i := 0; i < 64; i++ {
		got := fresh.Corrupt(1, 0, "")
		if len(got) == 1 && got[0] >= 33 && got[0] < 127 {
			sawJunk = true
		}
	}
	if !sawJunk {
		t.Error("bit-flip corruptor never fabricated noise from silence")
	}
}

// TestPartitionCutsThenHeals: the cut is a nonempty boundary, dropped in
// both directions before the heal step and delivered after; Healed
// reports the full cut once healed; the plan settles exactly at the heal.
func TestPartitionCutsThenHeals(t *testing.T) {
	top := starTopology(6)
	p := PartitionFor(11, 3, 100).(*partitionPlan)
	p.Begin(top)
	if p.cutCount == 0 {
		t.Fatal("partition:3 on a 7-node star cut no links")
	}
	if p.healAt <= 100/2 || p.healAt > 100 {
		t.Fatalf("healAt = %d, want in the upper half of the horizon (51..100)", p.healAt)
	}
	if p.Healed() != 0 {
		t.Fatal("healed before any step")
	}
	dec := NewDecision(top.Nodes(), top.Links())
	view := fakeView{top: top}
	for step := 1; step <= 120; step++ {
		dec.Reset()
		p.Step(step, view, dec)
		for l := 0; l < top.Links(); l++ {
			f := p.Filter(step, l)
			switch {
			case step < p.healAt && p.cut[l] && f != FateDrop:
				t.Fatalf("step %d: cut link %d fate %v, want drop", step, l, f)
			case (step >= p.healAt || !p.cut[l]) && f != FateDeliver:
				t.Fatalf("step %d: link %d fate %v, want deliver", step, l, f)
			}
		}
		if step < p.healAt && p.Settled() {
			t.Fatalf("settled at step %d before heal %d", step, p.healAt)
		}
	}
	if got := p.Healed(); got != int64(p.cutCount) {
		t.Errorf("Healed() = %d, want the whole cut %d", got, p.cutCount)
	}
	if !p.Settled() {
		t.Error("not settled after the heal")
	}
	// The cut must sever the island in both directions: for every cut
	// link, its reverse (same endpoints swapped) is cut too.
	for l := 0; l < top.Links(); l++ {
		if !p.cut[l] {
			continue
		}
		src, dst := top.LinkSrc(l), top.LinkDst(l)
		found := false
		for m := 0; m < top.Links(); m++ {
			if top.LinkSrc(m) == dst && top.LinkDst(m) == src && p.cut[m] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cut link %d (%d→%d) has an uncut reverse", l, src, dst)
		}
	}
}

// TestRetransmitSchedulesOnRecovery: a false→true liveness transition
// schedules up to R retransmissions on exactly the recovered node's
// in-links, all within the horizon, and the plan is inert without
// recoveries.
func TestRetransmitSchedulesOnRecovery(t *testing.T) {
	top := starTopology(4)
	p := RetransmitFor(3, 2, 100).(*retransmitPlan)
	p.Begin(top)
	view := &aliveView{fakeView: fakeView{top: top}, alive: make([]bool, top.Nodes())}
	for v := range view.alive {
		view.alive[v] = true
	}
	dec := NewDecision(top.Nodes(), top.Links())
	resends := map[int][]int{} // link → steps
	runStep := func(step int) {
		dec.Reset()
		p.Step(step, view, dec)
		for l, rs := range dec.Resend {
			if rs {
				resends[l] = append(resends[l], step)
			}
		}
	}
	for step := 1; step <= 4; step++ {
		runStep(step)
	}
	if len(resends) != 0 {
		t.Fatalf("resends %v without any recovery", resends)
	}
	view.alive[2] = false
	runStep(5)
	view.alive[2] = true
	for step := 6; step <= 120; step++ {
		runStep(step)
	}
	if len(resends) == 0 {
		t.Fatal("no retransmissions after node 2 recovered")
	}
	for l, steps := range resends {
		if top.LinkDst(l) != 2 {
			t.Fatalf("retransmission on link %d (dst %d), want only node 2's in-links", l, top.LinkDst(l))
		}
		if len(steps) > 2 {
			t.Fatalf("link %d retransmitted %d times, want ≤ R=2", l, len(steps))
		}
		for _, s := range steps {
			if s <= 5 || s > 100 {
				t.Fatalf("link %d retransmission at step %d escapes (recovery, horizon]", l, s)
			}
		}
	}
	if !p.Settled() {
		t.Error("retransmit plan not settled past its horizon with no pending events")
	}
}

// TestComposeHostilePrecedence: drop beats corrupt beats dup, the
// composite delegates Corrupt to the winning component, CanCorrupt looks
// through composites, and Healed sums partition components.
func TestComposeHostilePrecedence(t *testing.T) {
	top := starTopology(2)
	dropWins := Compose(ByzantineFor(1, 1, 10), DropFor(2, 1, 10))
	dropWins.Begin(top)
	if f := dropWins.Filter(1, 0); f != FateDrop {
		t.Errorf("byzantine+drop fate = %v, want drop", f)
	}
	corruptWins := Compose(DupFor(1, 1, 10), ByzantineFor(2, 1, 10))
	corruptWins.Begin(top)
	if f := corruptWins.Filter(1, 0); f != FateCorrupt {
		t.Errorf("dup+byzantine fate = %v, want corrupt", f)
	}
	msg := corruptWins.(Corrupter).Corrupt(1, 0, "genuine")
	if msg == "genuine" {
		// Any of the three corruptors may fire; a same-length one-bit flip
		// never reproduces the input, silence and replay return other
		// strings here, so an unchanged payload means delegation failed.
		t.Error("composite Corrupt returned the genuine payload")
	}
	if CanCorrupt(nil) || CanCorrupt(Drop(1, 0.5)) || CanCorrupt(Compose(Drop(1, 0.5), Dup(2, 0.5))) {
		t.Error("CanCorrupt true for plans without a corrupting component")
	}
	if !CanCorrupt(Byzantine(1, 0.5)) || !CanCorrupt(Compose(Drop(1, 0.5), Byzantine(2, 0.5))) {
		t.Error("CanCorrupt false for corrupting plans")
	}
	healed := Compose(Partition(3, 2), Drop(4, 0.5))
	healed.Begin(starTopology(5))
	if _, ok := healed.(Healer); !ok {
		t.Fatal("composite with a partition component does not expose Healer")
	}
	if got := healed.(Healer).Healed(); got != 0 {
		t.Errorf("Healed() = %d before any step, want 0", got)
	}
}
