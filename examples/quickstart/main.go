// Quickstart: build a graph, give it a port numbering, run a distributed
// algorithm in a weak model, and validate the output against the problem
// definition.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

func main() {
	// A graph problem: mark the nodes with an odd number of odd-degree
	// neighbours (Theorem 13 of the paper — solvable with broadcast sends
	// and multiset receives, i.e. with no port numbers at all).
	g := graph.Caterpillar(4, 2) // a path with two legs per spine node
	problem := problems.OddOdd{}

	// The algorithm family member for this maximum degree.
	m := algorithms.OddOdd(g.MaxDegree())
	fmt.Printf("algorithm %q, class %v, Δ=%d\n", m.Name(), m.Class(), m.Delta())

	// Any port numbering works for an MB algorithm; draw a random one to
	// make the point.
	p := port.Random(g, rand.New(rand.NewSource(42)))
	fmt.Printf("graph %v, numbering consistent: %v\n", g, p.IsConsistent())

	res, err := engine.Run(m, p, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("halted after %d round(s); outputs:\n", res.Rounds)
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  node %2d (deg %d): %s\n", v, g.Degree(v), res.Output[v])
	}

	if err := problem.Validate(g, res.Output); err != nil {
		log.Fatalf("invalid solution: %v", err)
	}
	fmt.Println("solution validated: out ∈ Π(G)")

	// The same run on the sharded worker-pool executor.
	res2, err := engine.Run(m, p, engine.Options{Executor: engine.ExecutorPool})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for v := range res.Output {
		if res.Output[v] != res2.Output[v] {
			same = false
		}
	}
	fmt.Printf("pool executor agrees: %v\n", same)
}
