// Leader election in the port-numbering model — the classical problem of
// the prior work the paper builds on (Angluin; Yamashita–Kameda; Table 2).
//
// Election is possible exactly when the instance (G, p) is asymmetric:
// after n rounds of full-information exchange every node knows its depth-n
// view, and the nodes whose view class is lexicographically maximal and
// unique elect themselves. On symmetric instances — e.g. a cycle with the
// symmetric numbering, or the Figure 9a graph under its Lemma 15 numbering
// — all views coincide and no deterministic anonymous algorithm can ever
// elect; the example detects this and reports the obstruction via
// bisimulation, tying the election story to the paper's machinery.
//
// (Following the prior work the paper cites, the algorithm knows n — the
// paper's own classes drop that assumption, which is one reason election
// does not fit them; see Table 2.)
package main

import (
	"fmt"
	"log"
	"math/rand"

	"weakmodels/internal/bisim"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
	"weakmodels/internal/views"
)

func main() {
	rng := rand.New(rand.NewSource(9))

	fmt.Println("=== asymmetric instance: random numbering of the Petersen graph ===")
	g := graph.Petersen()
	p := port.Random(g, rng)
	elect(p)

	fmt.Println("\n=== asymmetric instance: a caterpillar tree ===")
	elect(port.Canonical(graph.Caterpillar(3, 2)))

	fmt.Println("\n=== symmetric instance: C6 with the symmetric consistent numbering ===")
	elect(port.SymmetricCycle(6))

	fmt.Println("\n=== symmetric instance: Figure 9a graph under its Lemma 15 numbering ===")
	g9 := graph.NoOneFactorCubic()
	perms, err := graph.DoubleCoverFactorPermutations(g9)
	if err != nil {
		log.Fatal(err)
	}
	p9, err := port.FromPermutationFactors(g9, perms)
	if err != nil {
		log.Fatal(err)
	}
	elect(p9)
}

// elect runs view-based election on (G, p) and prints the outcome.
func elect(p *port.Numbering) {
	g := p.Graph()
	n := g.N()
	classes := views.Classes(p, n) // depth-n views determine all views

	// Count class sizes and find the maximal class id per the canonical
	// class ordering (ids are assigned by first occurrence; use the class
	// of the lexicographically smallest representative as tie-break-free
	// deterministic choice: any *unique* class works as a leader rule).
	size := map[int]int{}
	for _, c := range classes {
		size[c]++
	}
	leaderClass := -1
	for c, s := range size {
		if s == 1 {
			if leaderClass == -1 || c < leaderClass {
				leaderClass = c
			}
		}
	}
	distinct := len(size)
	fmt.Printf("graph %v: %d view classes among %d nodes\n", g, distinct, n)
	if leaderClass == -1 {
		fmt.Println("no singleton view class ⇒ no deterministic election possible")
		// Cross-check with the paper's tool: if all nodes share one class,
		// they are bisimilar in K(+,+) and provably inseparable.
		if distinct == 1 {
			m := kripke.FromPorts(p, kripke.VariantPP)
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			fmt.Printf("bisimulation confirms total symmetry: %v\n",
				bisim.AllBisimilar(m, all, bisim.Options{}))
		}
		return
	}
	for v, c := range classes {
		if c == leaderClass {
			fmt.Printf("elected node %d (unique view class %d)\n", v, c)
			return
		}
	}
}
