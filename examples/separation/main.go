// Separation walkthrough: the full Theorem 13 argument (SB ⊊ MB), executed
// end to end.
//
//  1. The odd-odd problem (mark nodes with an odd number of odd-degree
//     neighbours) is solved by a one-round MB algorithm on any graph.
//  2. On the two-component witness graph, the hubs u and w require
//     different outputs, yet they are bisimilar in K(−,−) — the Kripke
//     model visible to SB algorithms. Since every SB algorithm corresponds
//     to an ML formula (Theorem 2) and bisimilar nodes satisfy the same
//     formulas (Fact 1), no SB algorithm solves the problem.
//  3. Graded bisimulation — the MB view — distinguishes u and w, which is
//     exactly why the MB algorithm works.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/bisim"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

func main() {
	g, u, w := graph.Theorem13Witness()
	fmt.Printf("witness graph: %v with hubs u=%d, w=%d\n", g, u, w)

	// Step 1: the MB algorithm solves the problem, for several numberings.
	m := algorithms.OddOdd(g.MaxDegree())
	problem := problems.OddOdd{}
	rng := rand.New(rand.NewSource(3))
	var first *engine.Result
	for trial := 0; trial < 5; trial++ {
		res, err := engine.Run(m, port.Random(g, rng), engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := problem.Validate(g, res.Output); err != nil {
			log.Fatal(err)
		}
		if first == nil {
			first = res
		}
	}
	fmt.Printf("MB algorithm solves it in %d round: S(u)=%s, S(w)=%s (they must differ)\n",
		first.Rounds, first.Output[u], first.Output[w])

	// Step 2: u and w are bisimilar in the SB view K(−,−).
	p := port.Canonical(g)
	mm := kripke.FromPorts(p, kripke.VariantMM)
	plain := bisim.Bisimilar(mm, u, w, bisim.Options{})
	fmt.Printf("u ~ w under plain bisimulation on K(−,−): %v\n", plain)
	if !plain {
		log.Fatal("separation witness broken")
	}
	part := bisim.Compute(mm, bisim.Options{})
	fmt.Println("equivalence classes in the SB view:")
	for id, class := range part.Classes() {
		fmt.Printf("  class %d: %v\n", id, class)
	}
	fmt.Println("⇒ every SB algorithm outputs the same value at u and w —")
	fmt.Println("  but the problem demands S(u) ≠ S(w). Hence odd-odd ∉ SB.")

	// Step 3: graded bisimulation (the MB view) separates them.
	gBisim := bisim.Bisimilar(mm, u, w, bisim.Options{Graded: true})
	fmt.Printf("u ~ w under graded bisimulation: %v (counting neighbours breaks the tie)\n", gBisim)
	if gBisim {
		log.Fatal("graded bisimulation should separate the hubs")
	}
	fmt.Println("\nconclusion: SB ⊊ MB — the first strict step of the linear order.")
}
