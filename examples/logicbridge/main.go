// Logic bridge: the Theorem 2 correspondence in both directions.
//
// Forward: a graded modal formula is compiled into a local algorithm of the
// matching class; running the algorithm reproduces model checking, and its
// round count equals the formula's modal depth (Table 3).
//
// Backward: a hand-written distributed algorithm is unfolded into a modal
// formula; model checking the formula reproduces the algorithm's outputs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/compile"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// ---- Forward: formula → algorithm ----
	// "I have at least two neighbours that have a degree-1 neighbour."
	f := logic.MustParse("<*,*>=2 (<*,*> q1)")
	fmt.Printf("formula φ = %s\n", f.String())
	fmt.Printf("fragment %s, modal depth %d\n", logic.ClassifyFragment(f), logic.ModalDepth(f))

	g := graph.Caterpillar(4, 1)
	m, variant, err := compile.MachineFromFormula(f, g.MaxDegree())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled into class %v for model %v\n", m.Class(), variant)

	p := port.Random(g, rng)
	res, err := engine.Run(m, p, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := kripke.FromPorts(p, variant)
	want := logic.Eval(model, f)
	fmt.Printf("runtime %d rounds (= modal depth %d)\n", res.Rounds, logic.ModalDepth(f))
	for v := 0; v < g.N(); v++ {
		got := res.Output[v] == "1"
		agree := "✓"
		if got != want[v] {
			agree = "✗"
		}
		fmt.Printf("  node %2d: algorithm %v, model checking %v %s\n", v, got, want[v], agree)
		if got != want[v] {
			log.Fatal("correspondence broken")
		}
	}

	// ---- Backward: algorithm → formula ----
	inner := algorithms.OddOdd(3)
	formulas, variant2, err := compile.FormulaFromMachine(inner, 3, 1, compile.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	psi := formulas["1"]
	fmt.Printf("\nunfolded %q into a %s formula over %v (size %d, md %d)\n",
		inner.Name(), logic.ClassifyFragment(psi), variant2, logic.Size(psi), logic.ModalDepth(psi))

	g2 := graph.Figure1Graph()
	p2 := port.Random(g2, rng)
	res2, err := engine.Run(inner, p2, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	val := logic.Eval(kripke.FromPorts(p2, variant2), psi)
	for v := 0; v < g2.N(); v++ {
		got := res2.Output[v] == "1"
		if got != val[v] {
			log.Fatalf("node %d: algorithm %v but formula %v", v, got, val[v])
		}
	}
	fmt.Printf("formula ψ agrees with the algorithm on all %d nodes of %v\n", g2.N(), g2)
	fmt.Println("\nTable 3 of the paper, executed: formulas ⇄ local algorithms.")
}
