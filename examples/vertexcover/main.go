// Vertex cover in the weakest practical model: the paper's Section 3.3
// motivation for studying classes below VVc is that 2-approximate vertex
// cover needs neither incoming nor outgoing port numbers (class MB).
//
// This example runs the broadcast-only fractional-matching 2-approximation
// on several graph families, reports the measured cover size against the
// exact optimum, and shows the approximation ratio never exceeds 2.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path:10", graph.Path(10)},
		{"cycle:11", graph.Cycle(11)},
		{"star:8", graph.Star(8)},
		{"complete:6", graph.Complete(6)},
		{"petersen", graph.Petersen()},
		{"grid:4x4", graph.Grid(4, 4)},
		{"no-1-factor", graph.NoOneFactorCubic()},
		{"caterpillar:5x2", graph.Caterpillar(5, 2)},
	}

	problem := problems.VertexCover{Ratio: 2}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\tn\tm\trounds\t|C|\tOPT\tratio")
	for _, fam := range families {
		g := fam.g
		m := algorithms.VertexCover2(g.MaxDegree())
		p := port.Random(g, rng)
		res, err := engine.Run(m, p, engine.Options{})
		if err != nil {
			log.Fatalf("%s: %v", fam.name, err)
		}
		if err := problem.Validate(g, res.Output); err != nil {
			log.Fatalf("%s: %v", fam.name, err)
		}
		size := 0
		for _, o := range res.Output {
			if o == "1" {
				size++
			}
		}
		opt := graph.MinVertexCoverBruteForce(g)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			fam.name, g.N(), g.M(), res.Rounds, size, opt, float64(size)/float64(opt))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall covers validated at ratio ≤ 2 — with broadcast sends and multiset")
	fmt.Println("receives only (class MB: no port numbers in either direction).")
}
