// Flight-recorder walkthrough: record a hostile run's decision stream and
// checkpoints, replay it byte-exactly at a different worker count, resume
// it from an intermediate snapshot, and bisect a failed stabilisation
// check to the exact first (step, node) that left the fault-free
// trajectory — the workflow `weakrun -checkpoint` / `-replay` / `-resume`
// plus `weakjournal diff` gives you on the command line, shown here
// against the library API.
//
// The recorder (internal/replay) captures every schedule decision, fault
// fate and settledness verdict in the engine's global draw order, plus a
// compact versioned binary snapshot of the full executor state every K
// steps. A replay feeds those decisions back through the ordinary Schedule
// and Plan interfaces, so the engine cannot tell it from a live run — the
// Result, the Trace and the serialized JSONL journal come back
// byte-identical, from step 0 or from any snapshot.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"strings"

	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/replay"
	"weakmodels/internal/schedule"
	"weakmodels/internal/stabilize"
)

// m0Counter counts the silent (m0) deliveries a node has seen. Fault-free
// it is constantly zero everywhere, so it stabilises trivially — and every
// dropped message permanently bumps the receiver off that trajectory. The
// perfect workload for watching a divergence enter: the damage is monotone
// and the first fault IS the first divergence.
func m0Counter(delta int) machine.Machine {
	return &machine.Func{
		MachineName:  "m0-counter",
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc:     func(int) machine.State { return 0 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(machine.State, int) machine.Message { return "x" },
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			count := s.(int)
			for _, m := range inbox {
				if m == machine.NoMessage {
					count++
				}
			}
			return count
		},
	}
}

// mustParse builds the seeded schedule and plan of the hostile run; both
// are stateful, so every run needs fresh instances of the same specs.
func mustParse() (engine.Options, error) {
	sched, err := schedule.Parse("random:0.3", 77)
	if err != nil {
		return engine.Options{}, err
	}
	plan, err := fault.Parse("drop:0.3,5,40", 1)
	if err != nil {
		return engine.Options{}, err
	}
	return engine.Options{
		Executor:  engine.ExecutorAsync,
		Schedule:  sched,
		Fault:     plan,
		MaxRounds: 200_000,
	}, nil
}

func main() {
	// A 4x4 torus under a seeded random-subset schedule and a 30% drop
	// plan active over steps 5..45 — hostile enough to knock the
	// m0-counter off its trajectory, transient enough to reach fixpoint.
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := m0Counter(g.MaxDegree())

	// ── 1. Record ────────────────────────────────────────────────────────
	// replay.New wraps the run's Options: it interposes players on the
	// schedule and the plan, installs a K=8 checkpoint cadence, and
	// streams the recording to `saved` (the file weakrun -checkpoint
	// writes). The journal rides along untouched.
	var saved, liveJournal bytes.Buffer
	opts, err := mustParse()
	if err != nil {
		log.Fatal(err)
	}
	opts.Workers = 4
	opts.Obs = &obs.Obs{Sink: obs.NewJournalWriter(&liveJournal)}
	ropts, recorder, err := replay.New(opts, 8, &saved)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(m, p, ropts)
	if err != nil {
		log.Fatal(err)
	}
	if err := recorder.Finish(res); err != nil {
		log.Fatal(err)
	}
	rec := recorder.Recording()
	fmt.Printf("recorded: %d steps, %d drops, fixpoint=%v; %d snapshots every 8 steps, %d bytes saved\n",
		res.Rounds, res.Drops, res.Fixpoint, len(rec.Snapshots()), saved.Len())

	// ── 2. Replay, byte-exactly, at a different worker count ────────────
	// Load decodes what Save wrote; Replay reruns the engine with the
	// players standing in for the generators. Workers=1 here vs the
	// recorded 4: the journal must still come back byte-identical — the
	// engine's determinism contract, now testable run-vs-replay.
	loaded, err := replay.Load(bytes.NewReader(saved.Bytes()), m, p)
	if err != nil {
		log.Fatal(err)
	}
	var replayJournal bytes.Buffer
	rres, err := loaded.Replay(m, p, engine.Options{
		Executor: engine.ExecutorAsync,
		Workers:  1,
		Obs:      &obs.Obs{Sink: obs.NewJournalWriter(&replayJournal)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed: %d steps at workers=1; journal byte-identical: %v\n",
		rres.Rounds, bytes.Equal(liveJournal.Bytes(), replayJournal.Bytes()))

	// ── 3. Resume from an intermediate snapshot ─────────────────────────
	// Snapshots are taken after a step's journal events flush, so a
	// replay from the snapshot before step FinalStep/2 produces exactly
	// the live journal's suffix — the tail of the run without the run.
	snap := loaded.SnapshotBefore(rec.FinalStep / 2)
	var suffixJournal bytes.Buffer
	if _, err := loaded.Replay(m, p, engine.Options{
		Executor: engine.ExecutorAsync,
		Obs:      &obs.Obs{Sink: obs.NewJournalWriter(&suffixJournal)},
	}, snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed from the step-%d snapshot: journal is the live journal's suffix: %v\n",
		snap.Step, strings.HasSuffix(liveJournal.String(), suffixJournal.String()))

	// ── 4. Bisect a failed stabilisation check ──────────────────────────
	// The same hostile cell through the self-stabilisation harness with
	// Bisect on: the check records the faulty run through the flight
	// recorder, and when the end states mismatch the reference, it
	// binary-searches the snapshots and replays one snapshot interval to
	// name the exact first (step, node) off the fault-free trajectory —
	// where the damage ENTERED, not just where it ended up.
	fresh, err := mustParse()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := stabilize.CheckWith(m, p, fresh.Schedule, fresh.Fault,
		stabilize.CheckOptions{MaxSteps: 200_000, Bisect: true, BisectEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstabilisation check: %s\n", rep)
	div := rep.FirstDivergence
	if div == nil {
		log.Fatal("expected a divergence under drops")
	}

	// The divergence window: the journal records around the bisected
	// step — the drops that put the damage in flight. This is what
	// `weakjournal diff -window 3 live.jsonl replay.jsonl` prints when a
	// replay (or a patched rerun) actually diverges.
	fmt.Printf("\njournal window around the first divergence (step %d, node %d):\n", div.Step, div.Node)
	for _, ln := range strings.Split(strings.TrimRight(liveJournal.String(), "\n"), "\n") {
		var e struct {
			Step int64  `json:"step"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(ln), &e); err == nil && e.Step >= int64(div.Step)-1 && e.Step <= int64(div.Step)+1 {
			fmt.Println(" ", ln)
		}
	}

	// The same workflow on the command line:
	//
	//	weakrun -alg max-consensus -graph torus:6x6 -executor async \
	//	  -faults drop:0.3 -checkpoint run.weakrec -journal live.jsonl
	//	weakrun -replay run.weakrec -journal replay.jsonl
	//	weakjournal diff live.jsonl replay.jsonl     # byte-identical
	//	weakrun -resume run.weakrec                  # tail from the last snapshot
	fmt.Println("\n(CLI: weakrun -checkpoint / -replay / -resume; weakjournal stats|filter|diff)")
}
