// Async walkthrough: run the same algorithm under increasingly hostile
// schedules and watch what asynchrony does — and does not — change.
//
// The async executor (engine.ExecutorAsync) replaces the synchronous
// round barrier of Section 1.3 with per-link FIFO queues driven by a
// schedule.Schedule: at every step the schedule decides which nodes are
// activated and which in-flight messages are delivered. A node fires only
// when it holds one delivered message per in-port and consumes exactly one
// per port, so its k-th firing computes exactly the synchronous state x_k:
// schedules control latency and interleaving, never the trajectory. Under
// any fair schedule a halting algorithm reaches the synchronous outputs;
// what varies is how many steps and activations it takes to get there.
package main

import (
	"fmt"
	"log"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

func main() {
	// An expander makes latency visible: diameter is small but every link
	// matters, so adversarial delays stretch runs without changing results.
	g, err := graph.Expander(64, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	p := port.Canonical(g)
	m := algorithms.OddOdd(g.MaxDegree())

	// The synchronous baseline the schedules will be measured against.
	seq, err := engine.Run(m, p, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algorithm %q on %v\n", m.Name(), g)
	fmt.Printf("synchronous baseline: %d round(s)\n\n", seq.Rounds)

	// The same run under five schedules, seeded for reproducibility: the
	// same (-schedule, -seed) pair always replays the same execution.
	const seed = 42
	fmt.Println("schedule       steps  fires(min..max)  outputs-match")
	for _, spec := range []string{"sync", "roundrobin", "random:0.3", "staleness:2", "adversary:6"} {
		sched, err := schedule.Parse(spec, seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run(m, p, engine.Options{
			MaxRounds: 200_000,
			Executor:  engine.ExecutorAsync,
			Schedule:  sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		minF, maxF := res.Fires[0], res.Fires[0]
		for _, f := range res.Fires {
			minF, maxF = min(minF, f), max(maxF, f)
		}
		match := true
		for v := range seq.Output {
			if seq.Output[v] != res.Output[v] {
				match = false
			}
		}
		fmt.Printf("%-13s %6d  %6d..%-6d   %v\n", sched.Name(), res.Rounds, minF, maxF, match)
	}

	// Fixpoint detection: max-consensus stabilises but never halts. The
	// synchronous executors can only give up at the round budget; the async
	// executor notices that no future step can change any state and stops.
	fmt.Println("\nmax-consensus (never halts) under adversary:4 ...")
	mc := algorithms.MaxConsensus(g.MaxDegree())
	if _, err := engine.Run(mc, p, engine.Options{MaxRounds: 500}); err == nil {
		log.Fatal("expected the sequential executor to give up")
	} else {
		fmt.Printf("  seq:   %v\n", err)
	}
	res, err := engine.Run(mc, p, engine.Options{
		MaxRounds: 200_000,
		Executor:  engine.ExecutorAsync,
		Schedule:  schedule.Adversary(seed, 4),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  async: global fixpoint detected after %d steps (fixpoint=%v)\n", res.Rounds, res.Fixpoint)
}
