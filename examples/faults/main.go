// Faults walkthrough: run self-stabilising gossip under increasingly
// hostile fault plans and watch it converge to the fault-free answer
// anyway — then watch exactly where the guarantee ends.
//
// The fault subsystem (internal/fault) layers a Plan on top of the async
// executor's schedule: delivered messages can be dropped (delivered as m0,
// the omission fault of message adversaries — the receiver hears silence
// but is never wedged), duplicated, or Byzantine-corrupted (bit-flipped,
// silenced, or replayed from the link's previous payload — tolerated
// through the machines' declared message alphabets); link sets can be cut
// by a healing partition; senders can retransmit to recovering
// neighbours; and nodes can crash and recover, with recovery resetting
// them to their initial state. Every plan is
// transient — it perturbs the run up to a seeded horizon and then settles —
// which is precisely the setting of self-stabilisation: convergence is
// demanded after the faults cease. The harness (internal/stabilize)
// compares the stabilised configuration against the fault-free synchronous
// run.
package main

import (
	"fmt"
	"log"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
	"weakmodels/internal/stabilize"
)

func main() {
	// A preferential-attachment graph: hub-heavy, so most gossip routes
	// through a few high-degree nodes — exactly what the budgeted
	// adversary attacks.
	g, err := graph.PreferentialAttachment(64, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	fmt.Printf("max-consensus gossip on %v\n", g)
	fmt.Println("fault plan                                    schedule    steps  drops  dups  corrupt  crash/rec  resend  healed  stabilised")

	const seed = 42
	for _, tc := range []struct{ faults, sched string }{
		{"none", "sync"},
		{"drop:0.3", "sync"},
		{"dup:0.3", "random:0.5"},
		{"drop:0.25+dup:0.25", "random:0.5"},
		{"crash:3", "sync"},
		{"drop:0.2+crash:2", "adversary:4"},
		{"adversary:4", "sync"},
		// The hostile-link families. Byzantine corruption rewrites payloads
		// in flight; the gossip's message guard ([0, Δ]) degrades junk to m0,
		// so a lie is never worse than silence. The partition cuts a seeded
		// 8-node island off the graph and heals mid-horizon — pure correlated
		// omission, so the island just gossips internally until the cut
		// links come back. Retransmission is the constructive one: every
		// in-neighbour of a recovering crash victim re-sends its steady
		// message with seeded backoff, re-seeding the frontier the reset
		// wiped.
		{"byzantine:0.3", "random:0.5"},
		{"partition:8", "roundrobin"},
		{"crash:2+retransmit:3", "sync"},
		{"byzantine:0.2+partition:6+crash:1+retransmit:2", "adversary:4"},
	} {
		plan, err := fault.Parse(tc.faults, seed)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := schedule.Parse(tc.sched, seed)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := stabilize.Check(m, p, sched, plan, 500_000)
		if err != nil {
			log.Fatal(err)
		}
		name := tc.faults
		if plan != nil {
			name = plan.Name()
		}
		fmt.Printf("%-45s %-10s %6d %6d %5d %8d %6d/%-3d %7d %7d  %v\n",
			name, sched.Name(), rep.Faulty.Rounds, rep.Faulty.Drops, rep.Faulty.Dups,
			rep.Faulty.Corruptions, rep.Faulty.Crashes, rep.Faulty.Recoveries,
			rep.Faulty.Retransmits, rep.Faulty.Healed, rep.Stabilised())
	}

	// Partition-and-heal, close up. The plan cuts every link between a
	// seeded BFS island and the rest of a torus, holds the cut for a seeded
	// stretch, then heals — each suppressed delivery lands as m0, so the
	// frontiers on both sides keep cycling and the fixpoint detector only
	// fires once the plan is settled. After healing, the cut links carry the
	// steady maxima across and both sides agree with the fault-free run.
	fmt.Println("\npartition-and-heal on a 6x6 torus (island of 9 cut, then healed):")
	torus := graph.Torus(6, 6)
	tm := algorithms.MaxConsensus(torus.MaxDegree())
	plan, err := fault.Parse("partition:9", seed)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := stabilize.Check(tm, port.Canonical(torus), schedule.RoundRobin(), plan, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", prep)
	fmt.Printf("  healed=%d directed links carried the cut — every one delivered m0 while the island was adrift\n",
		prep.Faulty.Healed)

	// The guarantee has exactly one edge: a node that never comes back. A
	// crash-stopped hub partitions the information flow, and the survivors
	// legitimately stabilise to the partitioned network's answer — the
	// harness reports the dead node separately instead of comparing it.
	fmt.Println("\ncrash-stop (no recovery) on the star's centre:")
	star := graph.Star(6)
	sm := algorithms.LeafProximityStab(star.MaxDegree(), 2)
	rep, err := stabilize.Check(sm, port.Canonical(star), schedule.Synchronous(),
		fault.CrashAt(0, 1, 0, fault.RecoverNone), 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", rep)
	fmt.Printf("  dead=%v — excluded from the stabilisation claim; leaves converge on their own\n", rep.Dead)
}
