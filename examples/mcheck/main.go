// Model checking at scale: the logic side of the paper on the fast
// engine — hash-consed formulas, bitset truth sets, CSR-compiled Kripke
// models and integer-signature partition refinement.
//
// The walkthrough builds the Kripke model K(+,+)…K(−,−) machinery of
// Section 4.3 on an n=10⁵ expander, then does what the seed-era
// string-keyed paths could not do interactively: evaluate a batch of
// graded formulas through one persistent Evaluator (each distinct
// subformula computed once, word-parallel, allocation-free in the steady
// state), refine the model to its coarsest graded bisimulation with the
// sharded signature fill (bit-identical for every worker count), and
// close the Hennessy–Milner loop — build the characteristic formula χ of
// a state's class and verify ‖χ‖ is exactly the class.
package main

import (
	"fmt"
	"log"
	"time"

	"weakmodels/internal/bisim"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

func main() {
	// An n=10⁵ random 4-regular-ish expander: two orders of magnitude
	// past what the string-keyed paths handled comfortably.
	g, err := graph.Expander(100_000, 4, 13)
	if err != nil {
		log.Fatal(err)
	}
	p := port.Canonical(g)
	m := kripke.FromPorts(p, kripke.VariantMM)

	// The CSR compile is cached on the model (like port.Routes), so the
	// one-time cost is visible here and free everywhere below.
	start := time.Now()
	m.CSR()
	fmt.Printf("CSR compile: n=%d, %d relations, %v\n", m.N(), len(m.Indices()), time.Since(start))

	// One interner + evaluator for the whole batch: structurally equal
	// subformulas share one ID, so the conjuncts q1-and-q2 share work
	// across all four formulas. Truth sets are []uint64 rows.
	in := logic.NewInterner()
	ev := logic.NewEvaluator(m, in)
	batch := []string{
		"q1 & <*,*> (q2 | !q3)",
		"<*,*>=2 (q2 | !q3)",
		"[*,*] (q4 | <*,*> q2)",
		"!(q1 & <*,*> (q2 | !q3))",
	}
	start = time.Now()
	for _, src := range batch {
		id := in.Intern(logic.MustParse(src))
		ev.Eval(id)
		fmt.Printf("  ‖%s‖: %d of %d states\n", src, ev.Count(id), m.N())
	}
	fmt.Printf("batch of %d formulas (%d shared DAG nodes): %v\n", len(batch), in.Len(), time.Since(start))

	// Coarsest graded bisimulation via integer-signature refinement. The
	// worker fan-out only parallelizes the signature fill; class ids are
	// assigned sequentially by first occurrence, so every worker count
	// returns the same Partition, element for element.
	start = time.Now()
	part := bisim.Compute(m, bisim.Options{Graded: true, Workers: 4})
	fmt.Printf("graded bisimulation: %d classes in %v (workers=4)\n", part.NumClasses(), time.Since(start))

	// The Hennessy–Milner loop: χ of state 0's depth-3 class, built on
	// the shared interner, model-checked with the same evaluator arena.
	// ‖χ‖ is the state's class after exactly 3 refinement rounds, so the
	// partition to compare against is the round-bounded one.
	start = time.Now()
	depth3 := bisim.Compute(m, bisim.Options{Graded: true, MaxRounds: 3, Workers: 4})
	ids := bisim.CharacteristicIDs(m, 3, g.MaxDegree(), true, in)
	row := ev.Eval(ids[0])
	match := 0
	for v := 0; v < m.N(); v++ {
		inClass := depth3[v] == depth3[0]
		if got := row[v>>6]&(1<<(uint(v)&63)) != 0; got == inClass {
			match++
		}
	}
	fmt.Printf("characteristic χ(state 0): ‖χ‖ matches the class on %d/%d states in %v\n",
		match, m.N(), time.Since(start))
	if match != m.N() {
		log.Fatal("Hennessy–Milner check failed")
	}
}
