// Observability walkthrough: attach the internal/obs telemetry layer to a
// partition-and-heal run and read the run back out of its own event
// journal — the workflow `weakrun -journal run.jsonl` + `tail run.jsonl`
// gives you on the command line, shown here against the library API.
//
// The engine journals every node activation, every delivery the fault
// plan interfered with (drop/dup/corrupt), every crash, recovery,
// retransmission and partition heal, and every fixpoint probe, as
// fixed-width records folded at the same barriers as the engine's
// counters. The serialized JSONL stream is deterministic: one shard or
// eight, GOMAXPROCS 1 or 32, the same seeded run serializes to the same
// bytes (pinned by TestJournalShardDeterminism), so a journal diff is a
// run diff. A metrics registry rides along and accumulates the Result
// counters into Prometheus series — `weakrun -metrics host:port` serves
// them live next to /debug/pprof.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

func main() {
	// A 6x6 torus running max-degree gossip under a partition plan: a
	// seeded island is cut off (its deliveries become correlated drops),
	// the cut heals at the horizon, and the gossip floods back across the
	// restored links until the fixpoint probe finally says "steady".
	g := graph.Torus(6, 6)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	plan, err := fault.Parse("partition:4,42,120", 1)
	if err != nil {
		log.Fatal(err)
	}

	// The obs hook: a JSONL journal (what -journal writes) teed with an
	// in-memory collector (so this walkthrough can group records without
	// re-parsing), plus a metrics registry (what -metrics snapshots).
	var jsonl bytes.Buffer
	var collect obs.Collect
	reg := obs.NewMetrics()
	res, err := engine.Run(m, p, engine.Options{
		Executor:  engine.ExecutorAsync,
		Schedule:  schedule.RoundRobin(),
		Fault:     plan,
		MaxRounds: 500_000,
		Obs: &obs.Obs{
			Sink:    obs.Tee{obs.NewJournalWriter(&jsonl), &collect},
			Metrics: reg,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d steps, fixpoint=%v; drops=%d healed=%d\n\n",
		res.Rounds, res.Fixpoint, res.Drops, res.Healed)

	// What a journal looks like: every record carries the same five keys
	// (step, kind, node, link, arg), -1 where a dimension does not apply.
	lines := strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n")
	fmt.Printf("journal: %d records; the first three:\n", len(lines))
	for _, ln := range lines[:3] {
		fmt.Println(" ", ln)
	}

	// Group it by kind — the shape of the whole run in one histogram.
	// Fires dominate (every activation is one record), the drop count is
	// the partition seen from the receivers' side, and exactly one heal
	// record marks the step the cut was restored.
	byKind := map[obs.Kind]int{}
	for _, e := range collect.Events {
		byKind[e.Kind]++
	}
	fmt.Println("\nrecords by kind:")
	for k := obs.KindFire; k <= obs.KindDiverge; k++ {
		if byKind[k] > 0 {
			fmt.Printf("  %-10s %6d\n", k, byKind[k])
		}
	}

	// Tail the interesting part: the heal record and the first probe after
	// it — the moment the partition ended and the first time the engine
	// asked "is this steady now?".
	fmt.Println("\nthe heal and the probes around it:")
	var healStep int64
	for _, e := range collect.Events {
		if e.Kind == obs.KindHeal {
			healStep = e.Step
			fmt.Printf("  step %-6d heal: %d links restored\n", e.Step, e.Arg)
		}
		if e.Kind == obs.KindProbe && healStep > 0 {
			verdict := "not yet steady"
			if e.Arg == 1 {
				verdict = "global fixpoint"
			}
			fmt.Printf("  step %-6d probe: %s\n", e.Step, verdict)
		}
	}

	// The drop records name the cut: every partitioned delivery is one
	// record with the link id — collapse them to the set of cut links.
	cut := map[int32]bool{}
	for _, e := range collect.Events {
		if e.Kind == obs.KindDrop {
			cut[e.Link] = true
		}
	}
	fmt.Printf("\nthe partition cut %d distinct links (%d dropped deliveries)\n",
		len(cut), byKind[obs.KindDrop])

	// And the metrics view of the same run: the registry accumulated the
	// Result counters into Prometheus series — scrape-ready via
	// Metrics.Handler(), snapshot-ready via WriteText.
	var prom strings.Builder
	if err := reg.WriteText(&prom); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmetrics snapshot (counters only):")
	for _, ln := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(ln, "weak_engine_") && !strings.Contains(ln, "_us") {
			fmt.Println(" ", ln)
		}
	}
}
