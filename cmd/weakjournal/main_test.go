package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeJournal drops a small synthetic journal and returns its path.
func writeJournal(t *testing.T, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var sample = []string{
	`{"step":1,"kind":"drop","node":3,"link":7,"arg":0}`,
	`{"step":1,"kind":"fire","node":0,"link":-1,"arg":1}`,
	`{"step":2,"kind":"fire","node":3,"link":-1,"arg":1}`,
	`{"step":3,"kind":"crash","node":5,"link":-1,"arg":0}`,
	`{"step":4,"kind":"probe","node":-1,"link":-1,"arg":1}`,
}

func TestStats(t *testing.T) {
	path := writeJournal(t, "a.jsonl", sample...)
	var sb strings.Builder
	if err := run([]string{"stats", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"records=5 steps=1..4 nodes=3", "fire", "drop", "crash", "probe"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// Canonical kind order: fire before drop before crash before probe.
	if strings.Index(out, "fire") > strings.Index(out, "drop") {
		t.Errorf("kinds out of canonical order:\n%s", out)
	}
}

func TestFilter(t *testing.T) {
	path := writeJournal(t, "a.jsonl", sample...)
	cases := []struct {
		args []string
		want []string
	}{
		{[]string{"-kind", "fire"}, []string{sample[1], sample[2]}},
		{[]string{"-node", "3"}, []string{sample[0], sample[2]}},
		{[]string{"-link", "7"}, []string{sample[0]}},
		{[]string{"-from", "2", "-to", "3"}, []string{sample[2], sample[3]}},
		{[]string{"-kind", "fire", "-node", "3"}, []string{sample[2]}},
		{[]string{"-node", "-1"}, []string{sample[4]}},
	}
	for _, c := range cases {
		var sb strings.Builder
		if err := run(append([]string{"filter"}, append(c.args, path)...), &sb); err != nil {
			t.Fatalf("filter %v: %v", c.args, err)
		}
		got := strings.TrimRight(sb.String(), "\n")
		if got != strings.Join(c.want, "\n") {
			t.Errorf("filter %v:\ngot:\n%s\nwant:\n%s", c.args, got, strings.Join(c.want, "\n"))
		}
	}
	var sb strings.Builder
	if err := run([]string{"filter", "-kind", "explode", path}, &sb); err == nil {
		t.Error("filter accepted an unknown kind")
	}
}

func TestDiff(t *testing.T) {
	a := writeJournal(t, "a.jsonl", sample...)
	same := writeJournal(t, "same.jsonl", sample...)
	var sb strings.Builder
	if err := run([]string{"diff", a, same}, &sb); err != nil {
		t.Fatalf("identical journals: %v", err)
	}
	if !strings.Contains(sb.String(), "journals identical: 5 records") {
		t.Errorf("missing identical verdict:\n%s", sb.String())
	}

	// One perturbed record: the diff names its index and step and prints
	// the divergence window with the divergent record marked.
	mutated := append([]string{}, sample...)
	mutated[2] = `{"step":2,"kind":"fire","node":4,"link":-1,"arg":1}`
	b := writeJournal(t, "b.jsonl", mutated...)
	sb.Reset()
	err := run([]string{"diff", "-window", "1", a, b}, &sb)
	if err == nil {
		t.Fatal("divergent journals reported no error")
	}
	out := sb.String()
	for _, want := range []string{
		"journals diverge at record 2 (step 2)",
		"--- " + a, "--- " + b,
		"> " + "     2 " + sample[2],
		"> " + "     2 " + mutated[2],
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, sample[0]) {
		t.Errorf("-window 1 printed records outside the window:\n%s", out)
	}

	// A strict prefix diverges at its end.
	prefix := writeJournal(t, "p.jsonl", sample[:3]...)
	sb.Reset()
	if err := run([]string{"diff", a, prefix}, &sb); err == nil {
		t.Fatal("prefix journal reported identical")
	}
	if !strings.Contains(sb.String(), "journals diverge at record 3") ||
		!strings.Contains(sb.String(), "<end of journal>") {
		t.Errorf("prefix diff verdict wrong:\n%s", sb.String())
	}
}

func TestBadInput(t *testing.T) {
	bad := writeJournal(t, "bad.jsonl", `{"step":1`)
	noSchema := writeJournal(t, "nos.jsonl", `{"foo":1}`)
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"stats"},
		{"stats", filepath.Join(t.TempDir(), "missing.jsonl")},
		{"stats", bad},
		{"stats", noSchema},
		{"filter", bad},
		{"diff", bad, bad},
		{"diff", bad},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
