// Command weakjournal inspects the JSONL event journals weakrun and the
// engine's obs layer emit (one {"step","kind","node","link","arg"} object
// per line, in deterministic global order).
//
// Usage:
//
//	weakjournal stats run.jsonl
//	weakjournal filter -kind drop -node 3 run.jsonl
//	weakjournal filter -from 10 -to 99 run.jsonl
//	weakjournal diff -window 3 live.jsonl replay.jsonl
//
// stats prints record totals, the step range and per-kind counts. filter
// reprints the matching records verbatim (byte-preserving, so filtered
// streams stay diffable). diff compares two journals record by record:
// identical journals say so and exit 0; otherwise the first divergent
// record and a window of context from both sides are printed — the
// divergence window of a replay gone wrong — and the exit status is
// nonzero. Journals are byte-identical across worker counts by the
// engine's determinism contract, so any diff is a real divergence, not
// scheduling noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"weakmodels/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "weakjournal:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: weakjournal stats FILE | filter [-kind K] [-node N] [-link L] [-from S] [-to S] FILE | diff [-window N] FILE FILE")
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "stats":
		return runStats(args[1:], out)
	case "filter":
		return runFilter(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	default:
		return usage()
	}
}

// record is one parsed journal line plus its raw bytes, kept verbatim so
// filter and diff never re-serialize (and never perturb) the stream.
type record struct {
	Step int64  `json:"step"`
	Kind string `json:"kind"`
	Node int64  `json:"node"`
	Link int64  `json:"link"`
	Arg  int64  `json:"arg"`
	raw  string
}

// readJournal parses a JSONL journal. Every line must carry the full
// five-key schema; anything else is a corrupt journal, reported with its
// line number.
func readJournal(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		r := record{Step: -1, Node: -2, Link: -2, raw: line}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: not a journal record: %w", path, ln, err)
		}
		if r.Step < 0 || r.Kind == "" || r.Node < -1 || r.Link < -1 {
			return nil, fmt.Errorf("%s:%d: journal record missing schema keys: %s", path, ln, line)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// runStats summarises one journal: totals, step range, per-kind counts.
func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("weakjournal stats", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stats wants exactly one journal file")
	}
	recs, err := readJournal(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintln(out, "empty journal")
		return nil
	}
	counts := map[string]int{}
	nodes := map[int64]bool{}
	minStep, maxStep := recs[0].Step, recs[0].Step
	for _, r := range recs {
		counts[r.Kind]++
		if r.Node >= 0 {
			nodes[r.Node] = true
		}
		if r.Step < minStep {
			minStep = r.Step
		}
		if r.Step > maxStep {
			maxStep = r.Step
		}
	}
	fmt.Fprintf(out, "records=%d steps=%d..%d nodes=%d\n", len(recs), minStep, maxStep, len(nodes))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	// Canonical kind order first, unknown spellings (a newer journal) after.
	for _, k := range obs.KindNames() {
		if counts[k] > 0 {
			fmt.Fprintf(w, "%s\t%d\n", k, counts[k])
			delete(counts, k)
		}
	}
	for k, n := range counts {
		fmt.Fprintf(w, "%s\t%d\n", k, n)
	}
	return w.Flush()
}

// runFilter reprints the records matching every given predicate, verbatim.
func runFilter(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("weakjournal filter", flag.ContinueOnError)
	kind := fs.String("kind", "", "keep only this event kind: "+strings.Join(obs.KindNames(), "|"))
	node := fs.Int64("node", -1, "keep only this node's events")
	link := fs.Int64("link", -1, "keep only this link's events")
	from := fs.Int64("from", 0, "keep only steps ≥ this")
	to := fs.Int64("to", -1, "keep only steps ≤ this (-1 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("filter wants exactly one journal file")
	}
	if *kind != "" {
		if _, err := obs.ParseKind(*kind); err != nil {
			return err
		}
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	recs, err := readJournal(fs.Arg(0))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(out)
	for _, r := range recs {
		if *kind != "" && r.Kind != *kind {
			continue
		}
		if set["node"] && r.Node != *node {
			continue
		}
		if set["link"] && r.Link != *link {
			continue
		}
		if r.Step < *from || (*to >= 0 && r.Step > *to) {
			continue
		}
		fmt.Fprintln(bw, r.raw)
	}
	return bw.Flush()
}

// runDiff compares two journals record by record and, on the first
// difference, prints the divergence window from both sides. Byte-identical
// journals exit 0; divergent ones exit nonzero.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("weakjournal diff", flag.ContinueOnError)
	window := fs.Int("window", 3, "records of context to print around the first divergence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two journal files")
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	a, err := readJournal(pathA)
	if err != nil {
		return err
	}
	b, err := readJournal(pathB)
	if err != nil {
		return err
	}
	n := min(len(a), len(b))
	div := -1
	for i := 0; i < n; i++ {
		if a[i].raw != b[i].raw {
			div = i
			break
		}
	}
	if div == -1 {
		if len(a) == len(b) {
			fmt.Fprintf(out, "journals identical: %d records\n", len(a))
			return nil
		}
		// One journal is a strict prefix of the other: the divergence is the
		// first record past the shared prefix.
		div = n
	}
	step := int64(-1)
	if div < len(a) {
		step = a[div].Step
	} else if div < len(b) {
		step = b[div].Step
	}
	fmt.Fprintf(out, "journals diverge at record %d (step %d): %d vs %d records\n", div, step, len(a), len(b))
	printWindow(out, pathA, a, div, *window)
	printWindow(out, pathB, b, div, *window)
	return fmt.Errorf("journals differ at record %d", div)
}

// printWindow prints the records of recs around index div, marking the
// divergent one.
func printWindow(out io.Writer, path string, recs []record, div, window int) {
	lo := max(div-window, 0)
	hi := min(div+window+1, len(recs))
	fmt.Fprintf(out, "--- %s\n", path)
	for i := lo; i < hi; i++ {
		mark := " "
		if i == div {
			mark = ">"
		}
		fmt.Fprintf(out, "%s %6d %s\n", mark, i, recs[i].raw)
	}
	if div >= len(recs) {
		fmt.Fprintf(out, "> %6d <end of journal>\n", div)
	}
}
