// Command weakrun executes a distributed algorithm on a port-numbered graph
// and prints the per-node outputs and telemetry.
//
// Usage:
//
//	weakrun -alg odd-odd -graph cycle:8 -ports random:7
//	weakrun -alg vertex-cover -graph petersen -ports canonical -executor pool
//	weakrun -alg odd-odd -graph torus:6x6 -executor async -schedule adversary:4 -seed 9
//	weakrun -alg odd-odd -graph torus:100x100 -executor async -workers 8 -schedule random:0.5
//	weakrun -alg odd-odd -graph pa:64,3,7 -executor async -faults drop:0.2+crash:2 -fault-seed 5
//	weakrun -formula "<*,*> q1" -graph star:5
//	weakrun -list
//
// With -formula the algorithm is compiled from a modal formula via
// Theorem 2 and the satisfying nodes are printed. With -executor async the
// run is driven by the -schedule/-seed adversary and the summary reports
// per-node activation counts and whether a global fixpoint was detected
// (-workers > 1 runs it on the sharded parallel driver, bit-identically);
// -faults/-fault-seed additionally inject a seeded fault plan (message
// omission/duplication, Byzantine corruption, link partitions with healing,
// sender-side retransmission, node crash/recovery) and the summary grows a
// fault telemetry line. -list enumerates every valid value of the
// enumerable flags and exits.
//
// Observability (internal/obs): -journal writes the run's deterministic
// JSONL event journal to a path ("-" appends it to the output stream);
// -metrics either writes a Prometheus text snapshot to a path after the
// run or, given a host:port, serves /metrics and /debug/pprof over HTTP
// for the run's duration; -json replaces the text report with one JSON
// object carrying the full telemetry block (with -journal=- the JSONL
// stream keeps stdout and the JSON object moves to stderr).
//
// Flight recorder (internal/replay): -checkpoint records the run's
// decision stream and periodic state snapshots (cadence -checkpoint-every)
// to a WRPLAY01 file; -replay reconstructs a recorded run byte-exactly
// without re-drawing any randomness (-replay-from resumes the replay from
// the latest snapshot at or before a step); -resume continues a possibly
// truncated recording live from its last snapshot, given the original
// flags. Replay and resume need the original -alg/-graph/-ports (the
// recording stores decisions, not the topology).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"text/tabwriter"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/compile"
	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/replay"
	"weakmodels/internal/schedule"
	"weakmodels/internal/spec"
)

// stderr is the side channel for output that must not pollute the primary
// stream (the -json object under -journal=-, the -metrics serving banner).
// A variable so tests can capture it.
var stderr io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "weakrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("weakrun", flag.ContinueOnError)
	algName := fs.String("alg", "", "algorithm name: "+fmt.Sprint(algorithms.RegistryNames()))
	formula := fs.String("formula", "", "modal formula to compile instead of -alg")
	graphSpec := fs.String("graph", "cycle:6", "graph specification")
	portSpec := fs.String("ports", "canonical", "port numbering: canonical|random:SEED|consistent:SEED|symmetric")
	executor := fs.String("executor", "seq", "execution strategy: seq|pool|async")
	workers := fs.Int("workers", 0, "shard count for the pool and async executors (default GOMAXPROCS)")
	schedSpec := fs.String("schedule", "sync", "async schedule: "+schedule.ValidSpecs)
	seed := fs.Int64("seed", 1, "seed for seeded async schedules")
	faultSpec := fs.String("faults", "", "async fault plan: "+fault.ValidSpecs())
	faultSeed := fs.Int64("fault-seed", 1, "seed for seeded fault plans")
	list := fs.Bool("list", false, "list valid executors, schedules, graphs, ports, faults and algorithms, then exit")
	maxRounds := fs.Int("max-rounds", 0, "round budget (async: step budget; 0 = default)")
	trace := fs.Bool("trace", false, "print the per-round state trace")
	jsonOut := fs.Bool("json", false, "emit the run summary as a single JSON object instead of the text report")
	journalPath := fs.String("journal", "", `write the run's JSONL event journal to this path ("-" = the output stream)`)
	metricsSpec := fs.String("metrics", "", "host:port serves /metrics and /debug/pprof during the run; any other value is a path the Prometheus snapshot is written to after it")
	checkpointPath := fs.String("checkpoint", "", "record the run's decision stream and state snapshots (flight recording) to this path")
	checkpointEvery := fs.Int("checkpoint-every", 64, "snapshot cadence in rounds/steps for -checkpoint")
	replayPath := fs.String("replay", "", "replay a -checkpoint recording byte-exactly instead of running live (pass the original -alg/-graph/-ports)")
	replayFrom := fs.Int("replay-from", 0, "with -replay: start from the latest snapshot at or before this step instead of step 0")
	resumePath := fs.String("resume", "", "resume a possibly truncated -checkpoint recording live from its last snapshot (pass every original flag)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return printList(out)
	}
	if *jsonOut && *trace {
		return fmt.Errorf("-json and -trace are mutually exclusive: the trace renderer is a text report")
	}

	// Validate every flag up front, so a bad spelling fails with the list of
	// valid values instead of a confusing downstream error.
	exec, err := engine.ParseExecutor(*executor)
	if err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *replayPath != "" {
		// The recording owns the schedule, the fault plan and the budget; a
		// flag that would re-introduce live randomness is a conflict, not a
		// silent ignore.
		for _, bad := range []string{"checkpoint", "checkpoint-every", "resume",
			"schedule", "seed", "faults", "fault-seed", "max-rounds"} {
			if set[bad] {
				return fmt.Errorf("-replay drives the run from the recording; -%s conflicts with it", bad)
			}
		}
	}
	if set["replay-from"] && *replayPath == "" {
		return fmt.Errorf("-replay-from is only meaningful with -replay")
	}
	if set["checkpoint-every"] && *checkpointPath == "" {
		return fmt.Errorf("-checkpoint-every is only meaningful with -checkpoint")
	}
	if *resumePath != "" && *checkpointPath != "" {
		return fmt.Errorf("-resume and -checkpoint are mutually exclusive: re-recording a resumed run would start the recording mid-stream")
	}
	if set["workers"] {
		if *workers < 1 {
			return fmt.Errorf("-workers must be ≥ 1, got %d", *workers)
		}
		// -replay picks the executor from the recording, so -workers stands
		// on its own there.
		if exec != engine.ExecutorPool && exec != engine.ExecutorAsync && *replayPath == "" {
			return fmt.Errorf("-workers is only meaningful with -executor=pool or -executor=async (got -executor=%v)", exec)
		}
	}
	sched, err := schedule.Parse(*schedSpec, *seed)
	if err != nil {
		return err
	}
	if exec != engine.ExecutorAsync {
		if set["schedule"] {
			return fmt.Errorf("-schedule is only meaningful with -executor=async (got -executor=%v)", exec)
		}
		if set["seed"] {
			return fmt.Errorf("-seed is only meaningful with -executor=async (got -executor=%v)", exec)
		}
		sched = nil
	} else if set["seed"] && !schedule.UsesSeed(sched) {
		return fmt.Errorf("-seed is only meaningful with a seeded schedule (random|staleness|adversary), got -schedule=%s", *schedSpec)
	}
	plan, err := fault.Parse(*faultSpec, *faultSeed)
	if err != nil {
		return err
	}
	if plan != nil && exec != engine.ExecutorAsync {
		return fmt.Errorf("-faults is only meaningful with -executor=async (got -executor=%v)", exec)
	}
	if set["fault-seed"] {
		if plan == nil {
			return fmt.Errorf("-fault-seed is only meaningful with -faults")
		}
		if !fault.FlagSeedUsed(*faultSpec) {
			return fmt.Errorf("-fault-seed has no effect on -faults=%s: every component embeds its own ,SEED", *faultSpec)
		}
	}

	g, err := spec.ParseGraph(*graphSpec)
	if err != nil {
		return err
	}
	p, err := spec.ParseNumbering(g, *portSpec)
	if err != nil {
		return err
	}

	var m machine.Machine
	var compiledFrom *formulaReport
	switch {
	case *formula != "" && *algName != "":
		return fmt.Errorf("pass either -alg or -formula, not both")
	case *formula != "":
		f, err := logic.Parse(*formula)
		if err != nil {
			return err
		}
		compiled, variant, err := compile.MachineFromFormula(f, g.MaxDegree())
		if err != nil {
			return err
		}
		compiledFrom = &formulaReport{
			Formula:    f.String(),
			Variant:    fmt.Sprint(variant),
			ModalDepth: logic.ModalDepth(f),
		}
		if !*jsonOut {
			fmt.Fprintf(out, "compiled %q for %v (class %v, md %d)\n",
				f.String(), variant, compiled.Class(), logic.ModalDepth(f))
		}
		m = compiled
	case *algName != "":
		build, ok := algorithms.Registry()[*algName]
		if !ok {
			return fmt.Errorf("unknown algorithm %q; have %v", *algName, algorithms.RegistryNames())
		}
		m = build(g.MaxDegree())
	default:
		return fmt.Errorf("pass -alg or -formula")
	}

	o, reg, metricsPath, closeObs, err := setupObs(*journalPath, *metricsSpec, out)
	if err != nil {
		return err
	}
	defer closeObs()
	if *jsonOut && reg == nil {
		// The -json report always carries the timing block, so a registry
		// rides along even without -metrics.
		reg = obs.NewMetrics()
		if o == nil {
			o = &obs.Obs{}
		}
		o.Metrics = reg
	}

	// schedName/faultsName label the telemetry blocks; in replay mode the
	// live generators are gone (the recording is the generator state).
	schedName, faultsName := "", ""
	if sched != nil {
		schedName = sched.Name()
	}
	if plan != nil {
		faultsName = plan.Name()
	}
	var res *engine.Result
	var banner string // replay/resume/checkpoint note, printed ahead of the text report
	switch {
	case *replayPath != "":
		rec, err := loadRecording(*replayPath, m, p)
		if err != nil {
			return err
		}
		var from *engine.Snapshot
		fromStep := 0
		if set["replay-from"] {
			if from = rec.SnapshotBefore(*replayFrom); from == nil {
				return fmt.Errorf("-replay-from %d: %s has no snapshot at or before that step", *replayFrom, *replayPath)
			}
			fromStep = from.Step
		}
		if !rec.Sync {
			exec = engine.ExecutorAsync
			schedName = "replay"
		}
		if rec.HasPlan {
			faultsName = "replay"
		}
		res, err = rec.Replay(m, p, engine.Options{
			Executor:    exec,
			Workers:     *workers,
			RecordTrace: *trace,
			Obs:         o,
		}, from)
		if err != nil {
			return err
		}
		banner = fmt.Sprintf("replayed %s: steps %d..%d", *replayPath, fromStep, rec.FinalStep)
	case *resumePath != "":
		rec, err := loadRecording(*resumePath, m, p)
		if err != nil {
			return err
		}
		snaps := rec.Snapshots()
		if len(snaps) == 0 {
			return fmt.Errorf("-resume %s: recording holds no snapshot to resume from", *resumePath)
		}
		snap := snaps[len(snaps)-1]
		res, err = engine.Run(m, p, engine.Options{
			Executor:    exec,
			Workers:     *workers,
			Schedule:    sched,
			Fault:       plan,
			MaxRounds:   *maxRounds,
			RecordTrace: *trace,
			Obs:         o,
			Resume:      snap,
		})
		if err != nil {
			return err
		}
		banner = fmt.Sprintf("resumed %s from step %d", *resumePath, snap.Step)
	default:
		eopts := engine.Options{
			Executor:    exec,
			Workers:     *workers,
			Schedule:    sched,
			Fault:       plan,
			MaxRounds:   *maxRounds,
			RecordTrace: *trace,
			Obs:         o,
		}
		var recorder *replay.Recorder
		if *checkpointPath != "" {
			f, err := os.Create(*checkpointPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if eopts, recorder, err = replay.New(eopts, *checkpointEvery, f); err != nil {
				return err
			}
		}
		if res, err = engine.Run(m, p, eopts); err != nil {
			return err
		}
		if recorder != nil {
			if err := recorder.Finish(res); err != nil {
				return fmt.Errorf("seal recording %s: %w", *checkpointPath, err)
			}
			banner = fmt.Sprintf("recorded %s: %d snapshots every %d steps",
				*checkpointPath, len(recorder.Recording().Snapshots()), *checkpointEvery)
		}
	}
	if metricsPath != "" {
		if err := writeMetricsSnapshot(reg, metricsPath); err != nil {
			return err
		}
	}
	if *jsonOut {
		jsonDst := out
		if *journalPath == "-" {
			// The output stream stays pure JSONL; the report moves aside.
			jsonDst = stderr
		}
		return printJSON(jsonDst, m, g, res, exec, schedName, faultsName, *portSpec, p.IsConsistent(), compiledFrom, reg)
	}
	if banner != "" {
		fmt.Fprintln(out, banner)
	}
	fmt.Fprintf(out, "algorithm %s (class %v) on %v, ports=%s, consistent=%v\n",
		m.Name(), m.Class(), g, *portSpec, p.IsConsistent())
	fmt.Fprintf(out, "rounds=%d message-bytes=%d", res.Rounds, res.MessageBytes)
	if res.Shards > 1 {
		fmt.Fprintf(out, " shards=%d cut-links=%d", res.Shards, cutLinksOf(g, res.Shards))
	}
	fmt.Fprintln(out)
	if exec == engine.ExecutorAsync && len(res.Fires) > 0 {
		minF, maxF, total := res.Fires[0], res.Fires[0], int64(0)
		for _, f := range res.Fires {
			if f < minF {
				minF = f
			}
			if f > maxF {
				maxF = f
			}
			total += f
		}
		fmt.Fprintf(out, "schedule=%s steps=%d activations: min=%d max=%d total=%d fixpoint=%v\n",
			schedName, res.Rounds, minF, maxF, total, res.Fixpoint)
	}
	if faultsName != "" {
		alive := 0
		for _, a := range res.Alive {
			if a {
				alive++
			}
		}
		fmt.Fprintf(out, "faults=%s drops=%d dups=%d corruptions=%d crashes=%d recoveries=%d retransmits=%d healed=%d alive=%d/%d\n",
			faultsName, res.Drops, res.Dups, res.Corruptions, res.Crashes, res.Recoveries,
			res.Retransmits, res.Healed, alive, g.N())
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "node\tdegree\toutput")
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(w, "%d\t%d\t%s\n", v, g.Degree(v), res.Output[v])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *trace {
		return engine.RenderTrace(out, m, res)
	}
	return nil
}

// loadRecording opens and decodes a WRPLAY01 flight recording. Load
// tolerates a truncated tail (a killed recorder), so -resume works on
// exactly the recordings that need it.
func loadRecording(path string, m machine.Machine, p *port.Numbering) (*replay.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := replay.Load(f, m, p)
	if err != nil {
		return nil, fmt.Errorf("load recording %s: %w", path, err)
	}
	return rec, nil
}

// cutLinksOf counts the directed links the engine's BFS shard partition
// cuts — the cross-shard traffic a sharded run paid barrier/staging costs
// for. The engine shards by contiguous slices of the same BFS order, so
// recomputing the partition here reproduces its boundaries exactly.
func cutLinksOf(g *graph.Graph, shards int) int {
	if shards <= 1 {
		return 0
	}
	shardOf := make([]int, g.N())
	for s, nodes := range graph.ShardByBFS(g, shards) {
		for _, v := range nodes {
			shardOf[v] = s
		}
	}
	return graph.CutLinks(g, shardOf)
}

// setupObs resolves the -journal/-metrics flags into the engine's obs
// hook. The returned cleanup closes whatever was opened (journal file,
// metrics listener) and is safe to call on every exit path; metricsPath
// is non-empty when a snapshot must be written after the run.
func setupObs(journalPath, metricsSpec string, out io.Writer) (o *obs.Obs, reg *obs.Metrics, metricsPath string, cleanup func(), err error) {
	var closers []func()
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	if journalPath != "" {
		w := out
		if journalPath != "-" {
			f, err := os.Create(journalPath)
			if err != nil {
				return nil, nil, "", cleanup, err
			}
			closers = append(closers, func() { f.Close() })
			w = f
		}
		o = &obs.Obs{Sink: obs.NewJournalWriter(w)}
	}
	if metricsSpec != "" {
		reg = obs.NewMetrics()
		if o == nil {
			o = &obs.Obs{}
		}
		o.Metrics = reg
		if _, _, splitErr := net.SplitHostPort(metricsSpec); splitErr != nil {
			metricsPath = metricsSpec
		} else {
			ln, err := net.Listen("tcp", metricsSpec)
			if err != nil {
				return nil, nil, "", cleanup, err
			}
			mux := http.NewServeMux()
			mux.Handle("/metrics", reg.Handler())
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			srv := &http.Server{Handler: mux}
			go srv.Serve(ln)
			closers = append(closers, func() { srv.Close() })
			fmt.Fprintf(stderr, "weakrun: serving /metrics and /debug/pprof on http://%s\n", ln.Addr())
		}
	}
	return o, reg, metricsPath, cleanup, nil
}

// writeMetricsSnapshot dumps the registry in the Prometheus text format.
func writeMetricsSnapshot(reg *obs.Metrics, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// The -json report: one object, fixed schema (TestRunJSONSchema pins the
// key sets), optional blocks present exactly when their flag/executor is.
type formulaReport struct {
	Formula    string `json:"formula"`
	Variant    string `json:"variant"`
	ModalDepth int    `json:"modal_depth"`
}

type scheduleReport struct {
	Name       string `json:"name"`
	Steps      int    `json:"steps"`
	MinFires   int64  `json:"min_fires"`
	MaxFires   int64  `json:"max_fires"`
	TotalFires int64  `json:"total_fires"`
	Fixpoint   bool   `json:"fixpoint"`
}

type faultsReport struct {
	Plan        string `json:"plan"`
	Drops       int64  `json:"drops"`
	Dups        int64  `json:"dups"`
	Corruptions int64  `json:"corruptions"`
	Crashes     int64  `json:"crashes"`
	Recoveries  int64  `json:"recoveries"`
	Retransmits int64  `json:"retransmits"`
	Healed      int64  `json:"healed"`
	Alive       int    `json:"alive"`
}

// histReport summarises one timing histogram; mean_us is sum/count, 0 when
// the histogram never sampled.
type histReport struct {
	Count  int64   `json:"count"`
	SumUs  float64 `json:"sum_us"`
	MeanUs float64 `json:"mean_us"`
}

// timingReport carries the engine's wall-time histograms: per-round wall
// time and the per-shard compute/merge phase split (the load-imbalance
// signal of a sharded run).
type timingReport struct {
	RoundUs      histReport `json:"round_us"`
	ShardStepUs  histReport `json:"shard_step_us"`
	ShardMergeUs histReport `json:"shard_merge_us"`
}

type runReport struct {
	Algorithm    string          `json:"algorithm"`
	Class        string          `json:"class"`
	Formula      *formulaReport  `json:"formula,omitempty"`
	Graph        string          `json:"graph"`
	Nodes        int             `json:"nodes"`
	Ports        string          `json:"ports"`
	Consistent   bool            `json:"consistent"`
	Executor     string          `json:"executor"`
	Rounds       int             `json:"rounds"`
	MessageBytes int64           `json:"message_bytes"`
	Shards       int             `json:"shards"`
	CutLinks     int             `json:"cut_links"`
	Schedule     *scheduleReport `json:"schedule,omitempty"`
	Faults       *faultsReport   `json:"faults,omitempty"`
	Timing       *timingReport   `json:"timing,omitempty"`
	Outputs      []string        `json:"outputs"`
}

// summarize reads one histogram out of the registry.
func summarize(reg *obs.Metrics, name string) histReport {
	h := reg.Histogram(name, "", nil)
	r := histReport{Count: h.Count(), SumUs: h.Sum()}
	if r.Count > 0 {
		r.MeanUs = r.SumUs / float64(r.Count)
	}
	return r
}

// printJSON emits the whole telemetry block as a single indented JSON
// object — the machine-readable twin of the text report.
func printJSON(out io.Writer, m machine.Machine, g *graph.Graph, res *engine.Result,
	exec engine.Executor, schedName, faultsName string,
	portSpec string, consistent bool, compiledFrom *formulaReport, reg *obs.Metrics) error {
	outputs := make([]string, g.N())
	for v := range outputs {
		outputs[v] = string(res.Output[v])
	}
	rep := runReport{
		Algorithm:    m.Name(),
		Class:        fmt.Sprint(m.Class()),
		Formula:      compiledFrom,
		Graph:        g.String(),
		Nodes:        g.N(),
		Ports:        portSpec,
		Consistent:   consistent,
		Executor:     fmt.Sprint(exec),
		Rounds:       res.Rounds,
		MessageBytes: res.MessageBytes,
		Shards:       res.Shards,
		CutLinks:     cutLinksOf(g, res.Shards),
		Outputs:      outputs,
	}
	if exec == engine.ExecutorAsync && len(res.Fires) > 0 {
		sr := &scheduleReport{Name: schedName, Steps: res.Rounds, Fixpoint: res.Fixpoint}
		sr.MinFires, sr.MaxFires = res.Fires[0], res.Fires[0]
		for _, f := range res.Fires {
			if f < sr.MinFires {
				sr.MinFires = f
			}
			if f > sr.MaxFires {
				sr.MaxFires = f
			}
			sr.TotalFires += f
		}
		rep.Schedule = sr
	}
	if faultsName != "" {
		fr := &faultsReport{
			Plan:        faultsName,
			Drops:       res.Drops,
			Dups:        res.Dups,
			Corruptions: res.Corruptions,
			Crashes:     res.Crashes,
			Recoveries:  res.Recoveries,
			Retransmits: res.Retransmits,
			Healed:      res.Healed,
		}
		for _, a := range res.Alive {
			if a {
				fr.Alive++
			}
		}
		rep.Faults = fr
	}
	if reg != nil {
		rep.Timing = &timingReport{
			RoundUs:      summarize(reg, engine.MetricRoundUs),
			ShardStepUs:  summarize(reg, engine.MetricShardStepUs),
			ShardMergeUs: summarize(reg, engine.MetricShardMergeUs),
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// printList enumerates every valid value of the enumerable flags, so a
// user never has to provoke an error to discover a spelling.
func printList(out io.Writer) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "flag\tvalid values")
	fmt.Fprintln(w, "-executor\tseq | pool | async")
	fmt.Fprintln(w, "-workers\tshard count ≥ 1, with -executor=pool or -executor=async (default GOMAXPROCS); sharded runs report shards= and cut-links= (graph.CutLinks) on the telemetry line")
	fmt.Fprintln(w, "-schedule\t"+schedule.ValidSpecs)
	fmt.Fprintln(w, "-graph\t"+strings.Join(spec.GraphSpecs(), "  "))
	fmt.Fprintln(w, "-ports\t"+strings.Join(spec.NumberingSpecs(), " | "))
	fmt.Fprintln(w, "-faults\t"+fault.ValidSpecs())
	fmt.Fprintln(w, "-alg\t"+strings.Join(algorithms.RegistryNames(), "  "))
	fmt.Fprintln(w, "-journal\tfile path, or \"-\" for the output stream; with -json the JSONL journal keeps the output stream and the JSON object moves to stderr")
	fmt.Fprintln(w, "-checkpoint\tfile path for the run's flight recording (decision stream + a snapshot every -checkpoint-every rounds/steps)")
	fmt.Fprintln(w, "-replay\tpath of a -checkpoint recording to reconstruct byte-exactly (with the original -alg/-graph/-ports); -replay-from STEP starts from the latest snapshot at or before STEP")
	fmt.Fprintln(w, "-resume\tpath of a possibly truncated -checkpoint recording to continue live from its last snapshot (with every original flag)")
	return w.Flush()
}
