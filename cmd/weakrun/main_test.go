package main

import (
	"strings"
	"testing"
)

func TestRunAlgorithm(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "odd-odd", "-graph", "star:3", "-ports", "random:5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "odd-odd") || !strings.Contains(out, "rounds=1") {
		t.Errorf("unexpected output:\n%s", out)
	}
	// Star centre has 3 odd-degree neighbours → output 1; leaves see the
	// centre (odd degree 3) → output 1. The tabwriter expands tabs, so
	// compare fields.
	found := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "0" && fields[1] == "3" && fields[2] == "1" {
			found = true
		}
	}
	if !found {
		t.Errorf("centre row missing:\n%s", out)
	}
}

func TestRunFormula(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-formula", "q1 & <*,*> q3", "-graph", "star:3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "compiled") {
		t.Errorf("missing compile banner:\n%s", sb.String())
	}
}

func TestRunPoolExecutor(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "even-degree", "-graph", "cycle:4", "-executor", "pool", "-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrentAlias(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "even-degree", "-graph", "cycle:4", "-concurrent"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadExecutor(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "even-degree", "-executor", "warp"}, &sb); err == nil {
		t.Fatal("run accepted an unknown executor")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // neither -alg nor -formula
		{"-alg", "nope"},                      // unknown algorithm
		{"-alg", "odd-odd", "-graph", "x"},    // bad graph
		{"-alg", "odd-odd", "-ports", "y"},    // bad ports
		{"-formula", "(("},                    // bad formula
		{"-alg", "odd-odd", "-formula", "q1"}, // both
		{"-formula", "<1,1> q1 & <*,1> q1"},   // mixed labels
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
