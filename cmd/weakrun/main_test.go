package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestRunAlgorithm(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "odd-odd", "-graph", "star:3", "-ports", "random:5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "odd-odd") || !strings.Contains(out, "rounds=1") {
		t.Errorf("unexpected output:\n%s", out)
	}
	// Star centre has 3 odd-degree neighbours → output 1; leaves see the
	// centre (odd degree 3) → output 1. The tabwriter expands tabs, so
	// compare fields.
	found := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "0" && fields[1] == "3" && fields[2] == "1" {
			found = true
		}
	}
	if !found {
		t.Errorf("centre row missing:\n%s", out)
	}
}

func TestRunFormula(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-formula", "q1 & <*,*> q3", "-graph", "star:3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "compiled") {
		t.Errorf("missing compile banner:\n%s", sb.String())
	}
}

func TestRunPoolExecutor(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "even-degree", "-graph", "cycle:4", "-executor", "pool", "-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
}

// TestRunConcurrentFlagRemoved: the deprecated -concurrent alias is gone;
// -executor=pool is the spelling.
func TestRunConcurrentFlagRemoved(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "even-degree", "-graph", "cycle:4", "-concurrent"}, &sb); err == nil {
		t.Fatal("run accepted the removed -concurrent flag")
	}
}

// TestRunShardTelemetry: a sharded run reports its shard count and the
// directed links the BFS partition cuts on the telemetry line; inline runs
// stay silent about shards.
func TestRunShardTelemetry(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "even-degree", "-graph", "cycle:8",
		"-executor", "pool", "-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	// C8 split into two contiguous BFS halves cuts two edges → 4 directed
	// links.
	if !strings.Contains(sb.String(), "shards=2 cut-links=4") {
		t.Errorf("missing shard telemetry:\n%s", sb.String())
	}
	var seq strings.Builder
	if err := run([]string{"-alg", "even-degree", "-graph", "cycle:8"}, &seq); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(seq.String(), "shards=") {
		t.Errorf("inline run printed shard telemetry:\n%s", seq.String())
	}
}

func TestRunBadExecutor(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "even-degree", "-executor", "warp"}, &sb)
	if err == nil {
		t.Fatal("run accepted an unknown executor")
	}
	if !strings.Contains(err.Error(), "seq|pool|async") {
		t.Errorf("unknown-executor error should list valid values, got %v", err)
	}
}

func TestRunAsyncExecutor(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "odd-odd", "-graph", "star:3", "-ports", "random:5",
		"-executor", "async", "-schedule", "roundrobin"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "schedule=roundrobin") || !strings.Contains(out, "fixpoint=false") {
		t.Errorf("missing async summary:\n%s", out)
	}
	// Same outputs as the synchronous run of TestRunAlgorithm: the star
	// centre row reads 0 / 3 / 1.
	found := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "0" && fields[1] == "3" && fields[2] == "1" {
			found = true
		}
	}
	if !found {
		t.Errorf("centre row missing:\n%s", out)
	}
}

// TestRunAsyncWorkers: -workers with -executor=async selects the sharded
// parallel async driver, whose outputs are bit-identical to the
// single-threaded one — the flag must be accepted, not cross-validated
// away.
func TestRunAsyncWorkers(t *testing.T) {
	var seq, par strings.Builder
	if err := run([]string{"-alg", "odd-odd", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin", "-workers", "1"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-alg", "odd-odd", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin", "-workers", "3"}, &par); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(par.String(), "shards=3 cut-links=") {
		t.Errorf("sharded async run missing shard telemetry:\n%s", par.String())
	}
	// Apart from the shard telemetry suffix the outputs must be
	// bit-identical.
	stripShards := func(s string) string {
		lines := strings.Split(s, "\n")
		for i, ln := range lines {
			if strings.HasPrefix(ln, "rounds=") {
				if idx := strings.Index(ln, " shards="); idx >= 0 {
					lines[i] = ln[:idx]
				}
			}
		}
		return strings.Join(lines, "\n")
	}
	if stripShards(seq.String()) != stripShards(par.String()) {
		t.Errorf("sharded async output diverged from single-threaded\nworkers=1:\n%s\nworkers=3:\n%s",
			seq.String(), par.String())
	}
}

func TestRunAsyncSeededSchedules(t *testing.T) {
	for _, spec := range []string{"random:0.5", "staleness:2", "adversary:3"} {
		var sb strings.Builder
		err := run([]string{"-alg", "even-degree", "-graph", "cycle:5",
			"-executor", "async", "-schedule", spec, "-seed", "9"}, &sb)
		if err != nil {
			t.Errorf("schedule %s: %v", spec, err)
		}
	}
}

// TestRunFlagCrossValidation: flags that do not apply to the selected
// executor or schedule are rejected up front, never silently ignored.
func TestRunFlagCrossValidation(t *testing.T) {
	cases := [][]string{
		{"-alg", "even-degree", "-workers", "4"},                                       // workers without pool/async
		{"-alg", "even-degree", "-seed", "7"},                                          // seed without async
		{"-alg", "even-degree", "-executor", "async", "-seed", "7"},                    // seed with unseeded sync default
		{"-alg", "even-degree", "-executor", "async", "-schedule", "rr", "-seed", "7"}, // seed with roundrobin
		{"-alg", "even-degree", "-schedule", "roundrobin"},                             // schedule without async
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want cross-validation error", args)
		}
	}
}

func TestRunBadSchedule(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "even-degree", "-executor", "async", "-schedule", "chaos"}, &sb)
	if err == nil {
		t.Fatal("run accepted an unknown schedule")
	}
	if !strings.Contains(err.Error(), "sync") || !strings.Contains(err.Error(), "adversary") {
		t.Errorf("unknown-schedule error should list valid values, got %v", err)
	}
}

func TestRunScheduleNeedsAsync(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "even-degree", "-schedule", "roundrobin"}, &sb); err == nil {
		t.Fatal("run accepted -schedule without -executor=async")
	}
}

func TestRunBadWorkers(t *testing.T) {
	for _, w := range []string{"0", "-3"} {
		var sb strings.Builder
		err := run([]string{"-alg", "even-degree", "-graph", "cycle:4", "-executor", "pool", "-workers", w}, &sb)
		if err == nil {
			t.Fatalf("run accepted -workers=%s", w)
		}
		if !strings.Contains(err.Error(), "≥ 1") {
			t.Errorf("-workers=%s error unhelpful: %v", w, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // neither -alg nor -formula
		{"-alg", "nope"},                      // unknown algorithm
		{"-alg", "odd-odd", "-graph", "x"},    // bad graph
		{"-alg", "odd-odd", "-ports", "y"},    // bad ports
		{"-formula", "(("},                    // bad formula
		{"-alg", "odd-odd", "-formula", "q1"}, // both
		{"-formula", "<1,1> q1 & <*,1> q1"},   // mixed labels
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"-executor", "seq | pool | async",
		"-workers", "-executor=pool or -executor=async",
		"-schedule", "adversary:F",
		"-graph", "pa:N,M,SEED",
		"-ports", "consistent:SEED",
		"-faults", "crashstop:K", "byzantine:P", "partition:K", "retransmit:R",
		"-alg", "odd-odd",
		"-journal", "the JSON object moves to stderr",
		"-checkpoint", "-replay", "-replay-from STEP", "-resume",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFaults(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "even-degree", "-graph", "cycle:6",
		"-executor", "async", "-faults", "drop:0.3+dup:0.2", "-fault-seed", "9"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "faults=drop:0.3+dup:0.2") || !strings.Contains(out, "alive=6/6") {
		t.Errorf("missing fault telemetry line:\n%s", out)
	}
	// The telemetry line carries every counter, zero or not, so a reader
	// can grep one line for the whole fault story.
	for _, want := range []string{"corruptions=0", "retransmits=0", "healed=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault telemetry missing %q:\n%s", want, out)
		}
	}
}

// TestRunHostileFaults: the hostile-link families show up on the telemetry
// line with live counters — corruption rewrites, healed partition links,
// and retransmissions for recovering crash victims.
func TestRunHostileFaults(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin",
		"-faults", "byzantine:0.3,41,80+partition:3,42,80+crash:1,43,80+retransmit:2,44,80"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, banned := range []string{"corruptions=0 ", "healed=0 ", "retransmits=0 "} {
		if strings.Contains(out, banned) {
			t.Errorf("hostile run left %q at zero:\n%s", strings.TrimSpace(banned), out)
		}
	}
	if !strings.Contains(out, "alive=16/16") {
		t.Errorf("recovering plan should leave every node alive:\n%s", out)
	}
}

func TestRunBadFaults(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "even-degree", "-executor", "async", "-faults", "chaos"}, &sb)
	if err == nil {
		t.Fatal("run accepted an unknown fault spec")
	}
	if !strings.Contains(err.Error(), "drop:P") || !strings.Contains(err.Error(), "adversary:B") {
		t.Errorf("unknown-fault error should list valid specs, got %v", err)
	}
}

// TestRunFaultFlagCrossValidation: fault flags that do not apply are
// rejected up front, never silently ignored.
func TestRunFaultFlagCrossValidation(t *testing.T) {
	cases := [][]string{
		{"-alg", "even-degree", "-faults", "drop:0.5"},                      // faults without async
		{"-alg", "even-degree", "-executor", "pool", "-faults", "drop:0.5"}, // faults with pool
		{"-alg", "even-degree", "-executor", "async", "-fault-seed", "7"},   // fault-seed without faults
		// fault-seed with every component's seed embedded: the flag would
		// have no effect, which must be an error, not a silent ignore.
		{"-alg", "even-degree", "-executor", "async", "-faults", "drop:0.5,3", "-fault-seed", "7"},
		{"-alg", "even-degree", "-executor", "async", "-faults", "drop:0.5,3+dup:0.2,4", "-fault-seed", "7"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want cross-validation error", args)
		}
	}
}

// TestRunJSONSchema pins the -json object's key sets: a consumer parsing
// today's schema must keep parsing tomorrow's, so adding a key is fine
// only in the optional blocks' presence rules, and removing or renaming
// one must fail here first.
func TestRunJSONSchema(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin", "-workers", "2",
		"-faults", "partition:3,42,80", "-json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(sb.String()))
	var obj map[string]any
	if err := dec.Decode(&obj); err != nil {
		t.Fatalf("-json did not emit valid JSON: %v\n%s", err, sb.String())
	}
	if dec.More() {
		t.Fatalf("-json emitted more than one JSON value:\n%s", sb.String())
	}
	keysOf := func(m map[string]any) []string {
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	want := []string{"algorithm", "class", "consistent", "cut_links", "executor",
		"faults", "graph", "message_bytes", "nodes", "outputs", "ports",
		"rounds", "schedule", "shards", "timing"}
	if got := keysOf(obj); !reflect.DeepEqual(got, want) {
		t.Errorf("top-level keys = %v, want %v", got, want)
	}
	wantSched := []string{"fixpoint", "max_fires", "min_fires", "name", "steps", "total_fires"}
	if got := keysOf(obj["schedule"].(map[string]any)); !reflect.DeepEqual(got, wantSched) {
		t.Errorf("schedule keys = %v, want %v", got, wantSched)
	}
	wantFaults := []string{"alive", "corruptions", "crashes", "drops", "dups",
		"healed", "plan", "recoveries", "retransmits"}
	if got := keysOf(obj["faults"].(map[string]any)); !reflect.DeepEqual(got, wantFaults) {
		t.Errorf("faults keys = %v, want %v", got, wantFaults)
	}
	if n := len(obj["outputs"].([]any)); n != 16 {
		t.Errorf("outputs has %d entries, want 16", n)
	}
	if obj["shards"].(float64) != 2 || obj["cut_links"].(float64) == 0 {
		t.Errorf("shard telemetry wrong: shards=%v cut_links=%v", obj["shards"], obj["cut_links"])
	}
	timing := obj["timing"].(map[string]any)
	wantTiming := []string{"round_us", "shard_merge_us", "shard_step_us"}
	if got := keysOf(timing); !reflect.DeepEqual(got, wantTiming) {
		t.Errorf("timing keys = %v, want %v", got, wantTiming)
	}
	for _, k := range wantTiming {
		h := timing[k].(map[string]any)
		if got := keysOf(h); !reflect.DeepEqual(got, []string{"count", "mean_us", "sum_us"}) {
			t.Errorf("timing.%s keys = %v", k, got)
		}
	}
	// Two shards, one compute sample per shard per step.
	steps := timing["shard_step_us"].(map[string]any)
	if steps["count"].(float64) != 2*obj["rounds"].(float64) {
		t.Errorf("shard_step_us count = %v, want 2*rounds = %v", steps["count"], 2*obj["rounds"].(float64))
	}
}

// TestRunJSONSeqOmitsAsyncBlocks: without async or faults the optional
// blocks are absent, not null, and the formula block appears only with
// -formula (whose text banner -json suppresses).
func TestRunJSONSeqOmitsAsyncBlocks(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "odd-odd", "-graph", "star:3", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &obj); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"schedule", "faults", "formula"} {
		if _, ok := obj[absent]; ok {
			t.Errorf("seq -json object has a %q block", absent)
		}
	}

	var fb strings.Builder
	if err := run([]string{"-formula", "q1 & <*,*> q3", "-graph", "star:3", "-json"}, &fb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fb.String(), "compiled ") {
		t.Errorf("-json did not suppress the compile banner:\n%s", fb.String())
	}
	var fobj map[string]any
	if err := json.Unmarshal([]byte(fb.String()), &fobj); err != nil {
		t.Fatal(err)
	}
	f, ok := fobj["formula"].(map[string]any)
	if !ok {
		t.Fatalf("-formula -json object missing the formula block:\n%s", fb.String())
	}
	for _, k := range []string{"formula", "variant", "modal_depth"} {
		if _, ok := f[k]; !ok {
			t.Errorf("formula block missing %q", k)
		}
	}
}

// TestRunJSONTraceExcluded: -trace renders a text report, so combining it
// with -json is a flag error.
func TestRunJSONTraceExcluded(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "odd-odd", "-graph", "star:3", "-json", "-trace"}, &sb); err == nil {
		t.Error("run accepted -json with -trace, want flag error")
	}
}

// TestRunJSONJournalDash: -json with -journal=- keeps the output stream
// pure JSONL and moves the JSON report to stderr — neither is dropped.
func TestRunJSONJournalDash(t *testing.T) {
	var errBuf strings.Builder
	orig := stderr
	stderr = &errBuf
	defer func() { stderr = orig }()

	var sb strings.Builder
	err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin",
		"-faults", "partition:3,42,80", "-json", "-journal", "-"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Every stdout line is a JSONL record.
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("journal stream has %d records:\n%.200s", len(lines), sb.String())
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("output stream is not pure JSONL, line %q: %v", ln, err)
		}
		if _, ok := rec["kind"]; !ok {
			t.Fatalf("non-journal record on the output stream: %q", ln)
		}
	}
	// The JSON report landed on stderr, intact.
	var obj map[string]any
	if err := json.Unmarshal([]byte(errBuf.String()), &obj); err != nil {
		t.Fatalf("stderr does not hold the JSON report: %v\n%s", err, errBuf.String())
	}
	if _, ok := obj["faults"]; !ok {
		t.Errorf("stderr report missing the faults block:\n%s", errBuf.String())
	}
}

// TestRunJournalFlag: -journal writes one JSON object per line with the
// pinned record schema, to a file or ("-") the output stream.
func TestRunJournalFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var sb strings.Builder
	err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin",
		"-faults", "partition:3,42,80", "-journal", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("journal has %d records, want a partition-and-heal run's worth", len(lines))
	}
	kinds := map[string]bool{}
	for _, ln := range lines {
		var rec struct {
			Step *int64  `json:"step"`
			Kind *string `json:"kind"`
			Node *int64  `json:"node"`
			Link *int64  `json:"link"`
			Arg  *int64  `json:"arg"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", ln, err)
		}
		if rec.Step == nil || rec.Kind == nil || rec.Node == nil || rec.Link == nil || rec.Arg == nil {
			t.Fatalf("journal line %q is missing a schema key", ln)
		}
		kinds[*rec.Kind] = true
	}
	for _, want := range []string{"fire", "drop", "heal", "probe"} {
		if !kinds[want] {
			t.Errorf("journal never recorded a %q event; kinds seen: %v", want, kinds)
		}
	}

	// "-" sends the same records to the output stream, ahead of the report.
	var dash strings.Builder
	if err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin",
		"-faults", "partition:3,42,80", "-journal", "-"}, &dash); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dash.String(), lines[0]) {
		t.Errorf("-journal=- output does not start with the journal:\n%.200s", dash.String())
	}
}

// hostileArgs is one hostile async cell shared by the flight-recorder
// tests: every fault family live, deterministic under its embedded seeds.
func hostileArgs(extra ...string) []string {
	return append([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "random:0.3",
		"-faults", "byzantine:0.2,45,200+partition:3,46,200+crash:1,47,200+retransmit:1,48,200"},
		extra...)
}

// TestRunCheckpointReplay: -checkpoint records a hostile run; -replay
// reconstructs it byte-exactly (same report, same journal) with none of
// the original schedule/fault flags; -replay-from starts mid-run.
func TestRunCheckpointReplay(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "run.wrplay")
	liveJournal := filepath.Join(dir, "live.jsonl")

	var live strings.Builder
	if err := run(hostileArgs("-checkpoint", recPath, "-checkpoint-every", "8",
		"-journal", liveJournal), &live); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(live.String(), "recorded "+recPath) {
		t.Errorf("missing recording banner:\n%s", live.String())
	}

	replayJournal := filepath.Join(dir, "replay.jsonl")
	var rep strings.Builder
	if err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-replay", recPath, "-journal", replayJournal, "-workers", "3"}, &rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "replayed "+recPath+": steps 0..") {
		t.Errorf("missing replay banner:\n%s", rep.String())
	}
	// The reports agree on everything but the banner and shard telemetry.
	strip := func(s string) string {
		var keep []string
		for _, ln := range strings.Split(s, "\n") {
			if strings.HasPrefix(ln, "recorded ") || strings.HasPrefix(ln, "replayed ") {
				continue
			}
			if strings.HasPrefix(ln, "rounds=") {
				if idx := strings.Index(ln, " shards="); idx >= 0 {
					ln = ln[:idx]
				}
			}
			if strings.HasPrefix(ln, "schedule=") || strings.HasPrefix(ln, "faults=") {
				// The generator names read "replay" on the replay side.
				ln = ""
			}
			keep = append(keep, ln)
		}
		return strings.Join(keep, "\n")
	}
	if strip(live.String()) != strip(rep.String()) {
		t.Errorf("replay report diverged\nlive:\n%s\nreplay:\n%s", live.String(), rep.String())
	}
	liveJ, err := os.ReadFile(liveJournal)
	if err != nil {
		t.Fatal(err)
	}
	repJ, err := os.ReadFile(replayJournal)
	if err != nil {
		t.Fatal(err)
	}
	if string(liveJ) != string(repJ) {
		t.Error("replay journal is not byte-identical to the live journal")
	}

	// -replay-from replays a suffix: its journal is a suffix of the live one.
	fromJournal := filepath.Join(dir, "from.jsonl")
	var from strings.Builder
	if err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-replay", recPath, "-replay-from", "16", "-journal", fromJournal}, &from); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(from.String(), ": steps 16..") {
		t.Errorf("-replay-from 16 did not start at snapshot step 16:\n%s", from.String())
	}
	fromJ, err := os.ReadFile(fromJournal)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromJ) == 0 || !strings.HasSuffix(string(liveJ), string(fromJ)) {
		t.Error("mid-run replay journal is not a suffix of the live journal")
	}
}

// TestRunResume: a truncated recording resumes live from its last snapshot
// with the original flags and reaches the recorded run's verdict.
func TestRunResume(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "run.wrplay")
	var live strings.Builder
	if err := run(hostileArgs("-checkpoint", recPath, "-checkpoint-every", "8"), &live); err != nil {
		t.Fatal(err)
	}
	// Cut the tail off: a recorder killed mid-run leaves exactly this.
	data, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.wrplay")
	if err := os.WriteFile(cut, data[:len(data)*3/4], 0o644); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run(hostileArgs("-resume", cut), &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resumed "+cut+" from step ") {
		t.Errorf("missing resume banner:\n%s", resumed.String())
	}
	// The resumed run finishes at the same step with the same outputs.
	tail := func(s string) string {
		i := strings.Index(s, "rounds=")
		if i < 0 {
			return s
		}
		return s[i:]
	}
	want := tail(live.String())
	got := tail(resumed.String())
	if wantRounds := strings.SplitN(want, "\n", 2)[0]; !strings.HasPrefix(got, wantRounds) {
		t.Errorf("resumed run's telemetry line diverged\nlive:    %s\nresumed: %s",
			strings.SplitN(want, "\n", 2)[0], strings.SplitN(got, "\n", 2)[0])
	}
	node0 := func(s string) string {
		for _, ln := range strings.Split(s, "\n") {
			// The output column may be empty for a fixpoint-stopped run, so
			// match on the node and degree columns alone.
			if f := strings.Fields(ln); len(f) >= 2 && f[0] == "0" && f[1] == "4" {
				return ln
			}
		}
		return ""
	}
	if a, b := node0(live.String()), node0(resumed.String()); a == "" || a != b {
		t.Errorf("resumed outputs diverged: live %q, resumed %q", a, b)
	}
}

// TestRunRecorderFlagCrossValidation: the flight-recorder flags reject
// conflicting combinations up front.
func TestRunRecorderFlagCrossValidation(t *testing.T) {
	cases := [][]string{
		{"-alg", "even-degree", "-replay", "x", "-checkpoint", "y"},
		{"-alg", "even-degree", "-replay", "x", "-resume", "y"},
		{"-alg", "even-degree", "-replay", "x", "-schedule", "roundrobin"},
		{"-alg", "even-degree", "-replay", "x", "-faults", "drop:0.5"},
		{"-alg", "even-degree", "-replay", "x", "-max-rounds", "10"},
		{"-alg", "even-degree", "-replay-from", "8"},
		{"-alg", "even-degree", "-checkpoint-every", "8"},
		{"-alg", "even-degree", "-resume", "x", "-checkpoint", "y"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want cross-validation error", args)
		}
	}
}

// TestRunMetricsFlag: a non-address -metrics value is a snapshot path
// holding the Prometheus text rendition of the run's counters.
func TestRunMetricsFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var sb strings.Builder
	err := run([]string{"-alg", "max-consensus", "-graph", "torus:4x4",
		"-executor", "async", "-schedule", "roundrobin",
		"-faults", "partition:3,42,80", "-metrics", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap := string(data)
	for _, want := range []string{
		"weak_engine_runs_total 1",
		"weak_engine_healed_total 16",
		"weak_engine_nodes 16",
		"# TYPE weak_engine_round_us histogram",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
}
