// Command figures regenerates the paper's figures as textual artefacts:
// port-numbering tables (Figs 1–2), receive/send views (Figs 3–4), the
// class diagram (Fig 5), per-class information (Fig 6), the Kripke
// relations (Fig 7), the double-cover 1-factorization (Fig 8) and the
// no-1-factor witness with its symmetric numbering (Fig 9).
//
// Usage: figures -fig 7 [-graph fig1] [-ports canonical]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"weakmodels/internal/bisim"
	"weakmodels/internal/core"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure number 1-9 (0 = all)")
	dot := fs.Bool("dot", false, "emit the (graph, numbering) as Graphviz DOT and exit")
	graphSpec := fs.String("graph", "fig1", "graph for figures 1-4, 6-7")
	portSpec := fs.String("ports", "canonical", "numbering for figures 1-4, 6-7")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := spec.ParseGraph(*graphSpec)
	if err != nil {
		return err
	}
	p, err := spec.ParseNumbering(g, *portSpec)
	if err != nil {
		return err
	}
	if *dot {
		writeDOT(os.Stdout, p)
		return nil
	}
	figs := map[int]func(*graph.Graph, *port.Numbering) error{
		1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5,
		6: figure6, 7: figure7, 8: figure8, 9: figure9,
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			return fmt.Errorf("no figure %d", *fig)
		}
		return f(g, p)
	}
	for i := 1; i <= 9; i++ {
		fmt.Printf("===== Figure %d =====\n", i)
		if err := figs[i](g, p); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// figure1 prints a port numbering as the paper's edge-label notation.
func figure1(g *graph.Graph, p *port.Numbering) error {
	fmt.Printf("port numbering of %v (edge labels out-port → in-port):\n", g)
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Degree(v); i++ {
			d := p.Dest(v, i)
			fmt.Printf("  p((%d,%d)) = (%d,%d)\n", v, i, d.Node, d.Index)
		}
	}
	return nil
}

// figure2 reports consistency.
func figure2(g *graph.Graph, p *port.Numbering) error {
	fmt.Printf("consistency of the numbering (p∘p = id): %v\n", p.IsConsistent())
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Degree(v); i++ {
			d := p.Dest(v, i)
			dd := p.Dest(d.Node, d.Index)
			mark := "✓"
			if dd.Node != v || dd.Index != i {
				mark = "✗"
			}
			fmt.Printf("  (%d,%d) → (%d,%d) → (%d,%d) %s\n",
				v, i, d.Node, d.Index, dd.Node, dd.Index, mark)
		}
	}
	return nil
}

// figure3 shows the three receive views of the same inbox.
func figure3(*graph.Graph, *port.Numbering) error {
	inbox := []machine.Message{"a", "b", "a"}
	fmt.Printf("raw inbox (by in-port): %v\n", inbox)
	fmt.Printf("Vector view:   %v\n", machine.CanonicalInbox(machine.RecvVector, inbox))
	fmt.Printf("Multiset view: %v\n", machine.CanonicalInbox(machine.RecvMultiset, inbox))
	fmt.Printf("Set view:      %v\n", machine.CanonicalInbox(machine.RecvSet, inbox))
	return nil
}

// figure4 contrasts vector and broadcast sends.
func figure4(*graph.Graph, *port.Numbering) error {
	fmt.Println("Vector send:    port 1 ← m1, port 2 ← m2, port 3 ← m3 (μ may depend on the port)")
	fmt.Println("Broadcast send: port 1 ← m,  port 2 ← m,  port 3 ← m  (one message for all ports)")
	return nil
}

// figure5 prints the class diagram before and after the classification.
func figure5(*graph.Graph, *port.Numbering) error {
	fmt.Println("(a) trivial containments:")
	for _, pair := range core.TrivialSubsets() {
		fmt.Printf("  %v ⊆ %v\n", pair[0], pair[1])
	}
	fmt.Println("(b) proved linear order: SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc")
	fmt.Println("    (run cmd/classify for the machine-checked evidence)")
	return nil
}

// figure6 lists the information available to each class on (G,p).
func figure6(g *graph.Graph, p *port.Numbering) error {
	fmt.Printf("auxiliary information per class on %v, node 0:\n", g)
	v := 0
	fmt.Printf("  VVc/VV: out-ports to %v; in-ports from %v\n",
		outTargets(g, p, v), inSources(g, p, v))
	fmt.Printf("  MV/SV:  out-ports to %v; incoming messages unlabelled\n", outTargets(g, p, v))
	fmt.Printf("  VB:     outgoing broadcast; in-ports from %v\n", inSources(g, p, v))
	fmt.Printf("  MB/SB:  outgoing broadcast; incoming multiset/set\n")
	return nil
}

func outTargets(g *graph.Graph, p *port.Numbering, v int) []string {
	var out []string
	for i := 1; i <= g.Degree(v); i++ {
		d := p.Dest(v, i)
		out = append(out, fmt.Sprintf("%d→(%d,%d)", i, d.Node, d.Index))
	}
	return out
}

func inSources(g *graph.Graph, p *port.Numbering, v int) []string {
	var out []string
	for i := 1; i <= g.Degree(v); i++ {
		s := p.Source(v, i)
		out = append(out, fmt.Sprintf("%d←(%d,%d)", i, s.Node, s.Index))
	}
	return out
}

// figure7 prints the accessibility relations R(i,j), R(∗,j), R(i,∗), R(∗,∗).
func figure7(g *graph.Graph, p *port.Numbering) error {
	for _, variant := range []kripke.Variant{
		kripke.VariantPP, kripke.VariantMP, kripke.VariantPM, kripke.VariantMM,
	} {
		m := kripke.FromPorts(p, variant)
		fmt.Printf("%v relations:\n", variant)
		for _, alpha := range m.Indices() {
			fmt.Printf("  R%v:", alpha)
			for v := 0; v < m.N(); v++ {
				for _, w := range m.Succ(alpha, v) {
					fmt.Printf(" (%d,%d)", v, w)
				}
			}
			fmt.Println()
		}
	}
	return nil
}

// figure8 runs the Lemma 15 pipeline on the Petersen graph.
func figure8(*graph.Graph, *port.Numbering) error {
	g := graph.Petersen()
	fmt.Printf("Lemma 15 pipeline on %v:\n", g)
	cover := graph.DoubleCover(g)
	fmt.Printf("  bipartite double cover: %v\n", cover)
	factors, err := graph.OneFactorization(cover)
	if err != nil {
		return err
	}
	for i, f := range factors {
		fmt.Printf("  1-factor E%d: %v\n", i+1, f)
	}
	perms, err := graph.DoubleCoverFactorPermutations(g)
	if err != nil {
		return err
	}
	p, err := port.FromPermutationFactors(g, perms)
	if err != nil {
		return err
	}
	fmt.Printf("  symmetric numbering consistent: %v\n", p.IsConsistent())
	model := kripke.FromPorts(p, kripke.VariantPP)
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	fmt.Printf("  all nodes bisimilar in K(+,+): %v\n",
		bisim.AllBisimilar(model, all, bisim.Options{}))
	return nil
}

// figure9 builds the no-1-factor cubic witness and its symmetric numbering.
func figure9(*graph.Graph, *port.Numbering) error {
	g := graph.NoOneFactorCubic()
	fmt.Printf("Figure 9a graph: %v, 3-regular=%v, connected=%v\n",
		g, is3Regular(g), g.IsConnected())
	fmt.Printf("  maximum matching ν = %d (perfect would need %d)\n", graph.Nu(g), g.N()/2)
	rest, _ := g.RemoveNodes(0)
	fmt.Printf("  Tutte violation: o(G − centre) = %d > 1\n", rest.OddComponents())
	perms, err := graph.DoubleCoverFactorPermutations(g)
	if err != nil {
		return err
	}
	p, err := port.FromPermutationFactors(g, perms)
	if err != nil {
		return err
	}
	fmt.Printf("  symmetric numbering built (consistent: %v — inconsistent as Lemma 16 predicts)\n",
		p.IsConsistent())
	model := kripke.FromPorts(p, kripke.VariantPP)
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	fmt.Printf("  all nodes bisimilar in K(+,+): %v\n",
		bisim.AllBisimilar(model, all, bisim.Options{}))
	return nil
}

func is3Regular(g *graph.Graph) bool {
	k, ok := g.IsRegular()
	return ok && k == 3
}

// writeDOT renders (G, p) as a Graphviz digraph with port labels, the
// machine-readable counterpart of Figures 1-2.
func writeDOT(w io.Writer, p *port.Numbering) {
	g := p.Graph()
	fmt.Fprintln(w, "digraph ports {")
	fmt.Fprintln(w, "  edge [fontsize=9];")
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(w, "  n%d [label=\"%d (deg %d)\"];\n", v, v, g.Degree(v))
	}
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Degree(v); i++ {
			d := p.Dest(v, i)
			fmt.Fprintf(w, "  n%d -> n%d [taillabel=\"%d\", headlabel=\"%d\"];\n",
				v, d.Node, i, d.Index)
		}
	}
	fmt.Fprintln(w, "}")
}
