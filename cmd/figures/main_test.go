package main

import "testing"

func TestEveryFigure(t *testing.T) {
	for fig := 1; fig <= 9; fig++ {
		if err := run([]string{"-fig", intToArg(fig)}); err != nil {
			t.Errorf("figure %d: %v", fig, err)
		}
	}
}

func TestAllFigures(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestFigureErrors(t *testing.T) {
	if err := run([]string{"-fig", "12"}); err == nil {
		t.Error("figure 12 accepted")
	}
	if err := run([]string{"-graph", "zzz"}); err == nil {
		t.Error("bad graph accepted")
	}
	if err := run([]string{"-ports", "zzz"}); err == nil {
		t.Error("bad ports accepted")
	}
}

func intToArg(i int) string { return string(rune('0' + i)) }
