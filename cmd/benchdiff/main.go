// Command benchdiff compares two BENCH_engine.json perf records and fails
// when a benchmark regressed beyond a threshold, guarding the engine's perf
// trajectory across PRs:
//
//	BENCH_ENGINE_JSON=/tmp/bench_new.json go test -run TestEmitEngineBenchJSON
//	benchdiff -old BENCH_engine.json -new /tmp/bench_new.json
//
// Entries are matched by name; only entries present in both files are
// compared (new benchmarks are listed, never failed on). The exit status is
// 1 when any matching entry's ns/op regressed by more than -max-regress
// percent, or its allocs/op grew beyond -max-allocs-regress percent (with
// an absolute slack of allocSlack allocations, so near-zero baselines are
// not failed on measurement jitter — allocation counts are deterministic
// in steady state but one-time initialisation amortises differently across
// b.N). Entries whose ns/op is not > 0 on either side are skipped with a
// SKIP line: the percentage delta would be meaningless.
//
// When GITHUB_STEP_SUMMARY is set (as it is in every GitHub Actions step),
// benchdiff additionally appends a markdown summary table to that file, so
// the perf deltas of a PR are visible on its Actions summary page without
// opening logs. Regressed and new entries are always listed; unchanged
// entries are folded into a count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// record mirrors the rows TestEmitEngineBenchJSON writes.
type record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func load(path string) (map[string]record, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []record
	if err := json.Unmarshal(blob, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]record, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	oldPath := fs.String("old", "BENCH_engine.json", "committed baseline record")
	newPath := fs.String("new", "", "freshly emitted record to compare")
	maxRegress := fs.Float64("max-regress", 25, "max tolerated ns/op regression in percent")
	maxAllocsRegress := fs.Float64("max-allocs-regress", 25,
		"max tolerated allocs/op regression in percent (plus an absolute slack of a few allocations)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *newPath == "" {
		return fmt.Errorf("pass -new (a record emitted via TestEmitEngineBenchJSON)")
	}
	oldRows, err := load(*oldPath)
	if err != nil {
		return err
	}
	newRows, err := load(*newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(newRows))
	for name := range newRows {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows []diffRow
	var nsRegressions, allocRegressions, added, compared int
	for _, name := range names {
		nr := newRows[name]
		or, ok := oldRows[name]
		if !ok {
			added++
			fmt.Fprintf(out, "NEW   %-50s %12.0f ns/op %8d allocs/op\n", name, nr.NsPerOp, nr.AllocsPerOp)
			rows = append(rows, diffRow{status: "NEW", name: name, newRow: nr})
			continue
		}
		if !(or.NsPerOp > 0) || !(nr.NsPerOp > 0) {
			// A zero/negative/NaN measurement on either side makes the
			// percentage delta meaningless (NaN > threshold is false,
			// hiding regressions; a 0 new value reads as ok -100%).
			fmt.Fprintf(out, "SKIP  %-50s non-comparable ns/op (baseline %v, new %v)\n", name, or.NsPerOp, nr.NsPerOp)
			rows = append(rows, diffRow{status: "SKIP", name: name, oldRow: or, newRow: nr})
			continue
		}
		compared++
		delta := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		status := "ok"
		if delta > *maxRegress {
			status = "REGRESSED"
			nsRegressions++
		}
		allocNote := ""
		if allocsRegressed(or.AllocsPerOp, nr.AllocsPerOp, *maxAllocsRegress) {
			allocNote = "  ALLOCS-REGRESSED"
			allocRegressions++
			if status == "ok" {
				status = "ALLOC"
			}
		}
		fmt.Fprintf(out, "%-5s %-50s %12.0f → %-12.0f %+6.1f%%  %6d → %-6d allocs%s\n",
			status, name, or.NsPerOp, nr.NsPerOp, delta, or.AllocsPerOp, nr.AllocsPerOp, allocNote)
		rows = append(rows, diffRow{status: status, name: name, oldRow: or, newRow: nr, delta: delta})
	}
	// Sorted like the NEW/compared rows above: map iteration order would
	// make the report differ between runs on identical inputs.
	gone := make([]string, 0)
	for name := range oldRows {
		if _, ok := newRows[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(out, "GONE  %-50s (in baseline only)\n", name)
		rows = append(rows, diffRow{status: "GONE", name: name, oldRow: oldRows[name]})
	}
	fmt.Fprintf(out, "compared %d entries (%d new) against %s, thresholds %.0f%% ns/op, %.0f%% allocs/op\n",
		compared, added, *oldPath, *maxRegress, *maxAllocsRegress)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if err := appendStepSummary(path, rows, compared, *oldPath); err != nil {
			// The summary is a convenience mirror of the report above: a
			// write failure must not mask the regression verdict below
			// (or fail an otherwise clean diff).
			fmt.Fprintf(out, "WARN  could not write step summary to %s: %v\n", path, err)
		}
	}
	switch {
	case nsRegressions > 0 && allocRegressions > 0:
		return fmt.Errorf("%d benchmark(s) regressed by more than %.0f%% in ns/op and %d in allocs/op",
			nsRegressions, *maxRegress, allocRegressions)
	case nsRegressions > 0:
		return fmt.Errorf("%d benchmark(s) regressed by more than %.0f%% in ns/op", nsRegressions, *maxRegress)
	case allocRegressions > 0:
		return fmt.Errorf("%d benchmark(s) regressed by more than %.0f%% in allocs/op", allocRegressions, *maxAllocsRegress)
	}
	return nil
}

// diffRow is one comparison outcome, kept for the markdown summary.
type diffRow struct {
	status string // ok | REGRESSED | ALLOC | NEW | GONE | SKIP
	name   string
	oldRow record
	newRow record
	delta  float64 // ns/op delta in percent; meaningful for compared rows only
}

// appendStepSummary appends a markdown digest of the diff to the GitHub
// Actions step summary file, so a PR's perf deltas are readable on the
// Actions page without opening logs. Regressed/new/gone/skipped entries
// get a table row each; unchanged entries are folded into the headline.
func appendStepSummary(path string, rows []diffRow, compared int, oldPath string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var sb strings.Builder
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.status]++
	}
	fmt.Fprintf(&sb, "## benchdiff vs %s\n\n", oldPath)
	fmt.Fprintf(&sb, "%d compared, %d ok, %d regressed (ns/op), %d regressed (allocs), %d new, %d gone, %d skipped\n\n",
		compared, counts["ok"], counts["REGRESSED"], counts["ALLOC"], counts["NEW"], counts["GONE"], counts["SKIP"])
	fmt.Fprintln(&sb, "| status | benchmark | ns/op (old → new) | Δ ns/op | allocs/op (old → new) |")
	fmt.Fprintln(&sb, "|---|---|---|---|---|")
	listed := 0
	for _, r := range rows {
		if r.status == "ok" {
			continue // folded into the headline; the table carries the news
		}
		listed++
		switch r.status {
		case "NEW":
			fmt.Fprintf(&sb, "| NEW | `%s` | %.0f | — | %d |\n", r.name, r.newRow.NsPerOp, r.newRow.AllocsPerOp)
		case "GONE":
			fmt.Fprintf(&sb, "| GONE | `%s` | %.0f → — | — | %d → — |\n", r.name, r.oldRow.NsPerOp, r.oldRow.AllocsPerOp)
		case "SKIP":
			fmt.Fprintf(&sb, "| SKIP | `%s` | %v → %v | — | %d → %d |\n",
				r.name, r.oldRow.NsPerOp, r.newRow.NsPerOp, r.oldRow.AllocsPerOp, r.newRow.AllocsPerOp)
		default: // REGRESSED, ALLOC
			fmt.Fprintf(&sb, "| **%s** | `%s` | %.0f → %.0f | %+.1f%% | %d → %d |\n",
				r.status, r.name, r.oldRow.NsPerOp, r.newRow.NsPerOp, r.delta, r.oldRow.AllocsPerOp, r.newRow.AllocsPerOp)
		}
	}
	if listed == 0 {
		fmt.Fprintln(&sb, "| ok | _no regressions, additions or removals_ | | | |")
	}
	sb.WriteString("\n")
	_, err = f.WriteString(sb.String())
	return err
}

// allocSlack is the absolute allocs/op headroom granted on top of the
// percentage threshold: ±a few allocations around tiny baselines (0, 8,
// 16 allocs/op are typical here) are amortisation jitter, not regressions.
const allocSlack = 4

// allocsRegressed reports whether the allocation count grew beyond both
// the relative threshold and the absolute slack. Negative counts are
// treated as non-comparable.
func allocsRegressed(old, new int64, maxPct float64) bool {
	if old < 0 || new < 0 {
		return false
	}
	limit := float64(old) + max(allocSlack, float64(old)*maxPct/100)
	return float64(new) > limit
}
