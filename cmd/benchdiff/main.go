// Command benchdiff compares two BENCH_engine.json perf records and fails
// when a benchmark regressed beyond a threshold, guarding the engine's perf
// trajectory across PRs:
//
//	BENCH_ENGINE_JSON=/tmp/bench_new.json go test -run TestEmitEngineBenchJSON
//	benchdiff -old BENCH_engine.json -new /tmp/bench_new.json
//
// Entries are matched by name; only entries present in both files are
// compared (new benchmarks are listed, never failed on). The exit status is
// 1 when any matching entry's ns/op regressed by more than -max-regress
// percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// record mirrors the rows TestEmitEngineBenchJSON writes.
type record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func load(path string) (map[string]record, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []record
	if err := json.Unmarshal(blob, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]record, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	oldPath := fs.String("old", "BENCH_engine.json", "committed baseline record")
	newPath := fs.String("new", "", "freshly emitted record to compare")
	maxRegress := fs.Float64("max-regress", 25, "max tolerated ns/op regression in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *newPath == "" {
		return fmt.Errorf("pass -new (a record emitted via TestEmitEngineBenchJSON)")
	}
	oldRows, err := load(*oldPath)
	if err != nil {
		return err
	}
	newRows, err := load(*newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(newRows))
	for name := range newRows {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions, added, compared int
	for _, name := range names {
		nr := newRows[name]
		or, ok := oldRows[name]
		if !ok {
			added++
			fmt.Fprintf(out, "NEW   %-50s %12.0f ns/op\n", name, nr.NsPerOp)
			continue
		}
		if !(or.NsPerOp > 0) || !(nr.NsPerOp > 0) {
			// A zero/negative/NaN measurement on either side makes the
			// percentage delta meaningless (NaN > threshold is false,
			// hiding regressions; a 0 new value reads as ok -100%).
			fmt.Fprintf(out, "SKIP  %-50s non-comparable ns/op (baseline %v, new %v)\n", name, or.NsPerOp, nr.NsPerOp)
			continue
		}
		compared++
		delta := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		status := "ok"
		if delta > *maxRegress {
			status = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(out, "%-5s %-50s %12.0f → %-12.0f %+6.1f%%\n", status, name, or.NsPerOp, nr.NsPerOp, delta)
	}
	for name := range oldRows {
		if _, ok := newRows[name]; !ok {
			fmt.Fprintf(out, "GONE  %-50s (in baseline only)\n", name)
		}
	}
	fmt.Fprintf(out, "compared %d entries (%d new) against %s, threshold %.0f%%\n",
		compared, added, *oldPath, *maxRegress)
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed by more than %.0f%% in ns/op", regressions, *maxRegress)
	}
	return nil
}
