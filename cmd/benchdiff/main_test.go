package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain clears GITHUB_STEP_SUMMARY so unit tests don't append junk to a
// real Actions summary when the suite itself runs in CI; the summary tests
// below opt back in with t.Setenv.
func TestMain(m *testing.M) {
	os.Unsetenv("GITHUB_STEP_SUMMARY")
	os.Exit(m.Run())
}

func writeRecord(t *testing.T, name, blob string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `[
  {"name": "Engine/seq/a", "ns_per_op": 1000, "allocs_per_op": 8, "bytes_per_op": 64},
  {"name": "Engine/seq/b", "ns_per_op": 2000, "allocs_per_op": 8, "bytes_per_op": 64},
  {"name": "Engine/seq/gone", "ns_per_op": 10, "allocs_per_op": 0, "bytes_per_op": 0}
]`

func TestBenchdiffWithinThreshold(t *testing.T) {
	old := writeRecord(t, "old.json", baseline)
	fresh := writeRecord(t, "new.json", `[
	  {"name": "Engine/seq/a", "ns_per_op": 1200, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/seq/b", "ns_per_op": 1500, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/async/new", "ns_per_op": 9000, "allocs_per_op": 16, "bytes_per_op": 64}
	]`)
	var sb strings.Builder
	if err := run([]string{"-old", old, "-new", fresh}, &sb); err != nil {
		t.Fatalf("within-threshold diff failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"NEW", "GONE", "compared 2 entries (1 new)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchdiffFlagsRegression(t *testing.T) {
	old := writeRecord(t, "old.json", baseline)
	fresh := writeRecord(t, "new.json", `[
	  {"name": "Engine/seq/a", "ns_per_op": 1300, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/seq/b", "ns_per_op": 2000, "allocs_per_op": 8, "bytes_per_op": 64}
	]`)
	var sb strings.Builder
	err := run([]string{"-old", old, "-new", fresh, "-max-regress", "25"}, &sb)
	if err == nil {
		t.Fatalf("30%% regression passed a 25%% threshold:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("output missing REGRESSED marker:\n%s", sb.String())
	}
	// The same diff passes a looser threshold.
	sb.Reset()
	if err := run([]string{"-old", old, "-new", fresh, "-max-regress", "50"}, &sb); err != nil {
		t.Errorf("30%% regression failed a 50%% threshold: %v", err)
	}
}

func TestBenchdiffSkipsNonComparableEntries(t *testing.T) {
	old := writeRecord(t, "old.json", `[
	  {"name": "Engine/seq/zero-old", "ns_per_op": 0, "allocs_per_op": 0, "bytes_per_op": 0},
	  {"name": "Engine/seq/zero-new", "ns_per_op": 1000, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/seq/a", "ns_per_op": 1000, "allocs_per_op": 8, "bytes_per_op": 64}
	]`)
	fresh := writeRecord(t, "new.json", `[
	  {"name": "Engine/seq/zero-old", "ns_per_op": 5000, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/seq/zero-new", "ns_per_op": 0, "allocs_per_op": 0, "bytes_per_op": 0},
	  {"name": "Engine/seq/a", "ns_per_op": 1000, "allocs_per_op": 8, "bytes_per_op": 64}
	]`)
	var sb strings.Builder
	if err := run([]string{"-old", old, "-new", fresh}, &sb); err != nil {
		t.Fatalf("non-comparable entries should be skipped, not failed on: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if got := strings.Count(out, "SKIP"); got != 2 {
		t.Errorf("want 2 SKIP lines (zero baseline, zero new), got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "compared 1 entries") {
		t.Errorf("non-comparable entries counted as compared:\n%s", out)
	}
}

// TestBenchdiffNewEntriesListedNeverFailed: entries present only in the
// fresh record — the benchmarks a PR adds — are each printed as a NEW row
// (in sorted order, so the report is deterministic) and can never fail the
// diff, no matter their numbers; entries only in the baseline come out as
// deterministically ordered GONE rows.
func TestBenchdiffNewEntriesListedNeverFailed(t *testing.T) {
	old := writeRecord(t, "old.json", `[
	  {"name": "Engine/seq/gone-b", "ns_per_op": 10, "allocs_per_op": 0, "bytes_per_op": 0},
	  {"name": "Engine/seq/gone-a", "ns_per_op": 10, "allocs_per_op": 0, "bytes_per_op": 0}
	]`)
	fresh := writeRecord(t, "new.json", `[
	  {"name": "Engine/async-par/z", "ns_per_op": 999999999, "allocs_per_op": 5000, "bytes_per_op": 64},
	  {"name": "Engine/async-par/a", "ns_per_op": 123, "allocs_per_op": 8, "bytes_per_op": 64}
	]`)
	var sb strings.Builder
	if err := run([]string{"-old", old, "-new", fresh}, &sb); err != nil {
		t.Fatalf("a diff of only NEW entries must pass: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"NEW   Engine/async-par/a", "NEW   Engine/async-par/z",
		"GONE  Engine/seq/gone-a", "GONE  Engine/seq/gone-b",
		"compared 0 entries (2 new)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if a, z := strings.Index(out, "async-par/a"), strings.Index(out, "async-par/z"); a > z {
		t.Errorf("NEW rows not sorted:\n%s", out)
	}
	if a, b := strings.Index(out, "gone-a"), strings.Index(out, "gone-b"); a > b {
		t.Errorf("GONE rows not sorted:\n%s", out)
	}
}

func TestBenchdiffErrors(t *testing.T) {
	old := writeRecord(t, "old.json", baseline)
	bad := writeRecord(t, "bad.json", "not json")
	for _, args := range [][]string{
		{"-old", old},                  // missing -new
		{"-old", old, "-new", "/nope"}, // unreadable
		{"-old", "/nope", "-new", old}, // unreadable baseline
		{"-old", old, "-new", bad},     // malformed
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestBenchdiffFlagsAllocRegression: allocs/op is compared too, with an
// absolute slack so near-zero baselines tolerate amortisation jitter.
func TestBenchdiffFlagsAllocRegression(t *testing.T) {
	old := writeRecord(t, "old.json", baseline)
	fresh := writeRecord(t, "new.json", `[
	  {"name": "Engine/seq/a", "ns_per_op": 1000, "allocs_per_op": 90, "bytes_per_op": 64},
	  {"name": "Engine/seq/b", "ns_per_op": 2000, "allocs_per_op": 8, "bytes_per_op": 64}
	]`)
	var sb strings.Builder
	err := run([]string{"-old", old, "-new", fresh}, &sb)
	if err == nil {
		t.Fatalf("8 → 90 allocs/op passed the default threshold:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("error should name allocs/op, got %v", err)
	}
	if !strings.Contains(sb.String(), "ALLOCS-REGRESSED") {
		t.Errorf("output missing ALLOCS-REGRESSED marker:\n%s", sb.String())
	}
	// A wildly loose threshold lets the same diff pass.
	sb.Reset()
	if err := run([]string{"-old", old, "-new", fresh, "-max-allocs-regress", "2000"}, &sb); err != nil {
		t.Errorf("alloc regression failed a 2000%% threshold: %v", err)
	}
}

// TestBenchdiffAllocSlack: growth within the absolute slack is jitter, not
// a regression — including on a zero baseline.
func TestBenchdiffAllocSlack(t *testing.T) {
	old := writeRecord(t, "old.json", `[
	  {"name": "Engine/seq/a", "ns_per_op": 1000, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/seq/z", "ns_per_op": 1000, "allocs_per_op": 0, "bytes_per_op": 0}
	]`)
	fresh := writeRecord(t, "new.json", `[
	  {"name": "Engine/seq/a", "ns_per_op": 1000, "allocs_per_op": 11, "bytes_per_op": 64},
	  {"name": "Engine/seq/z", "ns_per_op": 1000, "allocs_per_op": 4, "bytes_per_op": 0}
	]`)
	var sb strings.Builder
	if err := run([]string{"-old", old, "-new", fresh}, &sb); err != nil {
		t.Fatalf("within-slack alloc growth failed: %v\n%s", err, sb.String())
	}
	// One past the slack on a zero baseline does fail.
	fresh = writeRecord(t, "new2.json", `[
	  {"name": "Engine/seq/z", "ns_per_op": 1000, "allocs_per_op": 5, "bytes_per_op": 0}
	]`)
	sb.Reset()
	if err := run([]string{"-old", old, "-new", fresh}, &sb); err == nil {
		t.Fatalf("0 → 5 allocs/op passed (slack is 4):\n%s", sb.String())
	}
}

// TestBenchdiffStepSummary: with GITHUB_STEP_SUMMARY set, a diff appends a
// markdown digest — headline counts plus one table row per regressed, new,
// gone and skipped entry (ok entries are folded into the headline).
func TestBenchdiffStepSummary(t *testing.T) {
	old := writeRecord(t, "old.json", baseline)
	fresh := writeRecord(t, "new.json", `[
	  {"name": "Engine/seq/a", "ns_per_op": 1300, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/seq/b", "ns_per_op": 2000, "allocs_per_op": 8, "bytes_per_op": 64},
	  {"name": "Engine/async/new", "ns_per_op": 9000, "allocs_per_op": 16, "bytes_per_op": 64}
	]`)
	summary := filepath.Join(t.TempDir(), "summary.md")
	t.Setenv("GITHUB_STEP_SUMMARY", summary)
	var sb strings.Builder
	if err := run([]string{"-old", old, "-new", fresh}, &sb); err == nil {
		t.Fatal("30% regression must still fail with the summary enabled")
	}
	blob, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	got := string(blob)
	for _, want := range []string{
		"## benchdiff vs " + old,
		"1 regressed (ns/op)",
		"| **REGRESSED** | `Engine/seq/a` | 1000 → 1300 | +30.0% | 8 → 8 |",
		"| NEW | `Engine/async/new` | 9000 | — | 16 |",
		"| GONE | `Engine/seq/gone` |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "`Engine/seq/b`") {
		t.Errorf("unchanged entry should be folded into the headline, not listed:\n%s", got)
	}

	// A clean diff appends (not truncates) a no-news table.
	clean := writeRecord(t, "clean.json", baseline)
	if err := run([]string{"-old", old, "-new", clean}, &sb); err != nil {
		t.Fatalf("identical records failed: %v", err)
	}
	blob, err = os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(blob); !strings.Contains(got, "_no regressions, additions or removals_") ||
		!strings.Contains(got, "REGRESSED") {
		t.Errorf("second diff should append a no-news table after the first summary:\n%s", got)
	}

	// An unwritable summary path warns but must not mask the verdict: a
	// clean diff still passes.
	t.Setenv("GITHUB_STEP_SUMMARY", filepath.Join(t.TempDir(), "no", "such", "dir", "s.md"))
	sb.Reset()
	if err := run([]string{"-old", old, "-new", clean}, &sb); err != nil {
		t.Errorf("unwritable summary failed a clean diff: %v", err)
	}
	if !strings.Contains(sb.String(), "WARN  could not write step summary") {
		t.Errorf("missing summary-write warning:\n%s", sb.String())
	}
}
