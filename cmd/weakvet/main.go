// Command weakvet is the repository's static-analysis suite: custom
// analyzers that machine-enforce the engine's determinism,
// seeded-randomness, observability and allocation contracts.
//
// Run it through go vet (the blocking CI form):
//
//	go build -o /tmp/weakvet ./cmd/weakvet
//	go vet -vettool=/tmp/weakvet ./...
//
// or standalone over package patterns:
//
//	go run ./cmd/weakvet ./...
//	go run ./cmd/weakvet -maporder ./internal/engine/...
//
// Each analyzer's name is also its enable flag; with no analyzer flags
// all of them run. See the README's "Static analysis" section for the
// contracts and the //weakvet: annotation grammar.
package main

import (
	"weakmodels/internal/analysis/maporder"
	"weakmodels/internal/analysis/noalloc"
	"weakmodels/internal/analysis/obsguard"
	"weakmodels/internal/analysis/seededrand"
	"weakmodels/internal/analysis/unit"
	"weakmodels/internal/analysis/weakdir"
)

func main() {
	unit.Main(
		maporder.Analyzer,
		seededrand.Analyzer,
		obsguard.Analyzer,
		noalloc.Analyzer,
		weakdir.Analyzer,
	)
}
