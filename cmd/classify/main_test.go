package main

import "testing"

func TestClassifyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full derivation is slow")
	}
	if err := run([]string{"-trials", "1", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyFlagError(t *testing.T) {
	if err := run([]string{"-trials", "zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}
