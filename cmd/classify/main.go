// Command classify runs the full machine-checked derivation of the paper's
// main result — the linear order of Figure 5b:
//
//	SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc
//
// Every "=" is backed by running the corresponding simulation wrapper
// (Theorems 4, 8, 9) over the verification suite; every "⊊" is backed by a
// Corollary-3 separation witness (an algorithm for the stronger class plus
// a bisimulation argument against the weaker class).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"weakmodels/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	trials := fs.Int("trials", 3, "random numberings per graph")
	seed := fs.Int64("seed", 1, "numbering sampler seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	suite := core.DefaultSuite()
	suite.RandomTrials = *trials
	suite.Seed = *seed

	fmt.Println("weakmodels: machine-checked classification (Hella et al., PODC 2012)")
	fmt.Printf("suite: %d graphs × (1 canonical + %d random) numberings\n\n",
		len(suite.Graphs), *trials)

	start := time.Now()
	report, err := core.Derive(suite)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Println("collapse evidence (equalities):")
	for _, c := range report.Collapses {
		fmt.Printf("  ✓ %-32s %v-problem solved by a %v-class wrapper on the full suite\n",
			c.Name, c.Strong, c.Weak)
	}
	fmt.Println()
	fmt.Println("separation evidence (proper inclusions):")
	for _, s := range report.Separations {
		if s.Build != nil {
			fmt.Printf("  ✓ %-32s %s ∈ %v(1); witness nodes bisimilar in %v ⇒ ∉ %v\n",
				s.Name, s.Problem.Name(), s.InClass, s.Variant, s.NotInClass)
		} else {
			fmt.Printf("  ✓ %-32s %s: witness nodes bisimilar in %v ⇒ ∉ %v\n",
				s.Name, s.Problem.Name(), s.Variant, s.NotInClass)
		}
	}
	fmt.Println()
	fmt.Println("derived linear order (Figure 5b / equation (1)):")
	fmt.Printf("  %s\n\n", report)
	fmt.Println("logic captures (Theorem 2, constant-time classes):")
	for _, row := range core.CaptureTable() {
		suffix := ""
		if row.Consistent {
			suffix = " (consistent numberings)"
		}
		fmt.Printf("  %-4s(1) is captured by %-4s on %v%s\n",
			row.Class, row.Logic, row.Variant, suffix)
	}
	fmt.Println()
	fmt.Printf("all evidence verified in %v\n", elapsed.Round(time.Millisecond))
	return nil
}
