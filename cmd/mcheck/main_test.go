package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-formula", "q1 & <*,*> q3", "-graph", "star:3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitVariantAndBisim(t *testing.T) {
	args := []string{
		"-formula", "<2,1> q2", "-graph", "fig1", "-ports", "random:3",
		"-variant", "pp", "-bisim", "-graded",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"mp", "pm", "mm"} {
		if err := run([]string{"-formula", "<*,*> q1", "-graph", "path:3", "-variant", v}); err != nil {
			t.Fatalf("variant %s: %v", v, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                // missing formula
		{"-formula", ")"}, // parse error
		{"-formula", "q1", "-graph", "zzz"},
		{"-formula", "q1", "-ports", "zzz"},
		{"-formula", "q1", "-variant", "zz"},
		{"-formula", "<1,1> q1 & <*,1> q1"}, // unclassifiable without -variant
		// Up-front validation added in PR 10.
		{"-formula", "q1", "-node", "2"},            // -node without -char
		{"-formula", "q1", "-depth", "3"},           // -depth without -char
		{"-formula", "q1", "-workers", "0"},         // workers below 1
		{"-formula", "q1", "-graded"},               // -graded without -bisim/-char
		{"-char", "-formula", "q1"},                 // conflict
		{"-char", "-bisim"},                         // conflict
		{"-char", "-depth", "-1"},                   // negative depth
		{"-char", "-node", "-1"},                    // negative node
		{"-char", "-graph", "path:3", "-node", "9"}, // node out of range
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCharSmall(t *testing.T) {
	for _, graded := range []bool{false, true} {
		args := []string{"-char", "-graph", "torus:4x4", "-node", "3", "-depth", "2"}
		if graded {
			args = append(args, "-graded")
		}
		if err := run(args); err != nil {
			t.Fatalf("graded=%v: %v", graded, err)
		}
	}
}

func TestRunWorkersAndMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.prom")
	args := []string{
		"-formula", "<*,*>=2 q4", "-graph", "expander:200,4,5", "-variant", "mm",
		"-bisim", "-workers", "2", "-metrics", path,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"weak_logic_evals_total", "weak_logic_refine_rounds_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics snapshot missing %s", want)
		}
	}
}

// TestRunCharExpander1e5 is the ISSUE acceptance run: a characteristic-
// formula check completing on an n=10⁵ expander through the CLI path.
func TestRunCharExpander1e5(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10⁵ model; skipped in -short")
	}
	args := []string{"-char", "-graph", "expander:100000,4,13", "-node", "0", "-depth", "3", "-graded", "-workers", "4"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}
