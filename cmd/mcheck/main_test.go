package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-formula", "q1 & <*,*> q3", "-graph", "star:3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplicitVariantAndBisim(t *testing.T) {
	args := []string{
		"-formula", "<2,1> q2", "-graph", "fig1", "-ports", "random:3",
		"-variant", "pp", "-bisim", "-graded",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"mp", "pm", "mm"} {
		if err := run([]string{"-formula", "<*,*> q1", "-graph", "path:3", "-variant", v}); err != nil {
			t.Fatalf("variant %s: %v", v, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                // missing formula
		{"-formula", ")"}, // parse error
		{"-formula", "q1", "-graph", "zzz"},
		{"-formula", "q1", "-ports", "zzz"},
		{"-formula", "q1", "-variant", "zz"},
		{"-formula", "<1,1> q1 & <*,1> q1"}, // unclassifiable without -variant
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
