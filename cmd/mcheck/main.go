// Command mcheck model-checks a modal formula on the Kripke model
// K_{a,b}(G, p) of a port-numbered graph (Section 4.3 of the paper),
// running on the interned bitset evaluator and the integer-signature
// partition refiner, so n=10⁵ models are routine.
//
// Usage:
//
//	mcheck -formula "q1 & <*,*> q3" -graph star:3
//	mcheck -formula "<2,1> q2" -graph fig1 -ports random:7 -variant pp
//	mcheck -formula "<*,*>=2 q4" -graph expander:100000,4,13 -bisim -workers 4
//	mcheck -char -node 0 -depth 3 -graph expander:100000,4,13 -graded
//	mcheck -list
//
// Without -variant the minimal variant for the formula's labels is used
// (-char defaults to mm). -char builds the depth-round characteristic
// formula χ of -node's equivalence class, model-checks it, and verifies
// the truth set is exactly the class — the Hennessy–Milner contract, end
// to end on one command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"weakmodels/internal/bisim"
	"weakmodels/internal/compile"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/obs"
	"weakmodels/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcheck:", err)
		os.Exit(1)
	}
}

// listCap bounds how many states any single line enumerates; beyond it
// mcheck reports counts, so n=10⁵ runs stay readable.
const listCap = 32

func run(args []string) error {
	fs := flag.NewFlagSet("mcheck", flag.ContinueOnError)
	formula := fs.String("formula", "", "modal formula (required unless -char or -list)")
	graphSpec := fs.String("graph", "cycle:6", "graph specification")
	portSpec := fs.String("ports", "canonical", "port numbering specification")
	variantName := fs.String("variant", "", "model variant: pp|mp|pm|mm (default: inferred; mm with -char)")
	showBisim := fs.Bool("bisim", false, "also print the bisimulation partition")
	graded := fs.Bool("graded", false, "use graded (counting) bisimulation with -bisim or -char")
	workers := fs.Int("workers", 0, "refinement signature-fill workers (default GOMAXPROCS; partitions are identical for every setting)")
	char := fs.Bool("char", false, "characteristic-formula mode: build χ of -node's depth-round class and verify its truth set")
	node := fs.Int("node", 0, "state whose class -char characterises")
	depth := fs.Int("depth", 2, "refinement depth for -char (modal depth of χ)")
	metricsPath := fs.String("metrics", "", "write a Prometheus text snapshot of the weak_logic_* metrics to this path")
	list := fs.Bool("list", false, "list the valid values of every enumerable flag and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return printList(os.Stdout)
	}

	// Up-front validation: every conflict or out-of-range value is an
	// error before any work starts, never a silent ignore.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *char {
		if set["formula"] {
			return fmt.Errorf("-char builds its own formula (the class characteristic); -formula conflicts with it")
		}
		if set["bisim"] {
			return fmt.Errorf("-char already reports -node's class; -bisim conflicts with it")
		}
		if *depth < 0 {
			return fmt.Errorf("-depth must be ≥ 0, got %d", *depth)
		}
		if *node < 0 {
			return fmt.Errorf("-node must be ≥ 0, got %d", *node)
		}
	} else {
		if *formula == "" {
			return fmt.Errorf("-formula is required (or use -char / -list)")
		}
		for _, only := range []string{"node", "depth"} {
			if set[only] {
				return fmt.Errorf("-%s is only meaningful with -char", only)
			}
		}
	}
	if set["workers"] && *workers < 1 {
		return fmt.Errorf("-workers must be ≥ 1, got %d", *workers)
	}
	if set["graded"] && !*showBisim && !*char {
		return fmt.Errorf("-graded selects the bisimulation notion; it needs -bisim or -char")
	}

	var f logic.Formula
	var err error
	if !*char {
		if f, err = logic.Parse(*formula); err != nil {
			return err
		}
	}
	g, err := spec.ParseGraph(*graphSpec)
	if err != nil {
		return err
	}
	p, err := spec.ParseNumbering(g, *portSpec)
	if err != nil {
		return err
	}

	var variant kripke.Variant
	switch *variantName {
	case "pp":
		variant = kripke.VariantPP
	case "mp":
		variant = kripke.VariantMP
	case "pm":
		variant = kripke.VariantPM
	case "mm":
		variant = kripke.VariantMM
	case "":
		if *char {
			variant = kripke.VariantMM
		} else if variant, err = compile.VariantForFormula(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown variant %q: valid values are pp | mp | pm | mm", *variantName)
	}
	if *char && *node >= g.N() {
		return fmt.Errorf("-node %d out of range: graph has %d nodes", *node, g.N())
	}

	o := &obs.Obs{}
	if *metricsPath != "" {
		o.Metrics = obs.NewMetrics()
	}
	model := kripke.FromPorts(p, variant)

	if *char {
		err = runChar(model, g.MaxDegree(), *node, *depth, *graded, *workers, o)
	} else {
		err = runFormula(model, g.N(), f, variant, *showBisim, *graded, *workers, o)
	}
	if err != nil {
		return err
	}
	if *metricsPath != "" {
		return writeMetricsSnapshot(o.Metrics, *metricsPath)
	}
	return nil
}

// runFormula is the classic mode: evaluate one formula, optionally with
// the bisimulation partition alongside.
func runFormula(model *kripke.Model, n int, f logic.Formula, variant kripke.Variant, showBisim, graded bool, workers int, o *obs.Obs) error {
	in := logic.NewInterner()
	ev := logic.NewEvaluator(model, in)
	ev.AttachObs(o)
	id := in.Intern(f)
	row := ev.Eval(id)

	fmt.Printf("formula: %s\n", f.String())
	fmt.Printf("fragment: %s   modal depth: %d   model: %v over %d nodes (%d distinct subformulas)\n",
		logic.ClassifyFragment(f), logic.ModalDepth(f), variant, n, in.Len())
	holds := ev.Count(id)
	if holds <= listCap {
		var states []int
		for v := 0; v < n; v++ {
			if row[v>>6]&(1<<(uint(v)&63)) != 0 {
				states = append(states, v)
			}
		}
		fmt.Printf("‖φ‖ = %v (%d of %d nodes)\n", states, holds, n)
	} else {
		fmt.Printf("‖φ‖: %d of %d nodes\n", holds, n)
	}

	if showBisim {
		part := bisim.Compute(model, bisim.Options{Graded: graded, Workers: workers, Obs: o})
		classes := part.Classes()
		fmt.Printf("bisimulation classes (graded=%v): %d\n", graded, len(classes))
		for id, class := range classes {
			if id >= listCap {
				fmt.Printf("  … %d more classes\n", len(classes)-listCap)
				break
			}
			if len(class) <= listCap {
				fmt.Printf("  class %d: %v\n", id, class)
			} else {
				fmt.Printf("  class %d: %d nodes (first %v …)\n", id, len(class), class[:listCap])
			}
		}
	}
	return nil
}

// runChar is the Hennessy–Milner mode: compute the depth-round partition,
// build the characteristic formula of node's class, model-check it, and
// verify the truth set is exactly the class.
func runChar(model *kripke.Model, delta, node, depth int, graded bool, workers int, o *obs.Obs) error {
	part := bisim.Compute(model, bisim.Options{Graded: graded, MaxRounds: depth, Workers: workers, Obs: o})
	in := logic.NewInterner()
	ids := bisim.CharacteristicIDs(model, depth, delta, graded, in)
	ev := logic.NewEvaluator(model, in)
	ev.AttachObs(o)
	row := ev.Eval(ids[node])

	n := model.N()
	classSize := 0
	for v := 0; v < n; v++ {
		inClass := part[v] == part[node]
		if inClass {
			classSize++
		}
		if got := row[v>>6]&(1<<(uint(v)&63)) != 0; got != inClass {
			return fmt.Errorf("characteristic check FAILED at state %d: χ %v, class membership %v", v, got, inClass)
		}
	}
	fmt.Printf("characteristic check: node %d, depth %d, graded=%v\n", node, depth, graded)
	fmt.Printf("partition: %d classes over %d nodes; χ interned as %d DAG nodes\n",
		part.NumClasses(), n, in.Len())
	fmt.Printf("‖χ‖ == class(%d): verified (%d nodes)\n", node, classSize)
	return nil
}

// printList enumerates every valid value of the enumerable flags, so a
// user never has to provoke an error to discover a spelling.
func printList(out io.Writer) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "flag\tvalid values")
	fmt.Fprintln(w, "-formula\tgrammar: or := and {\"|\" and}; and := unary {\"&\" unary}; unary := \"!\" unary | \"<i,j>\" [\"=k\"] unary | \"[i,j]\" unary | atom; atom := true | false | ident | \"(\" formula \")\"; i,j := port number or *")
	fmt.Fprintln(w, "-graph\t"+strings.Join(spec.GraphSpecs(), "  "))
	fmt.Fprintln(w, "-ports\t"+strings.Join(spec.NumberingSpecs(), " | "))
	fmt.Fprintln(w, "-variant\tpp | mp | pm | mm (default: inferred from the formula's labels; mm with -char)")
	fmt.Fprintln(w, "-bisim\talso print the bisimulation partition (with -graded for the counting notion)")
	fmt.Fprintln(w, "-workers\trefinement signature-fill workers ≥ 1 (default GOMAXPROCS); the partition is bit-identical for every setting")
	fmt.Fprintln(w, "-char\tbuild and verify the characteristic formula of -node's -depth-round class (Hennessy–Milner)")
	fmt.Fprintln(w, "-metrics\tfile path for a Prometheus text snapshot of the weak_logic_* eval/refinement metrics")
	return w.Flush()
}

// writeMetricsSnapshot dumps the registry in the Prometheus text format.
func writeMetricsSnapshot(reg *obs.Metrics, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
