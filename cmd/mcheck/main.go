// Command mcheck model-checks a modal formula on the Kripke model
// K_{a,b}(G, p) of a port-numbered graph (Section 4.3 of the paper).
//
// Usage:
//
//	mcheck -formula "q1 & <*,*> q3" -graph star:3
//	mcheck -formula "<2,1> q2" -graph fig1 -ports random:7 -variant pp
//
// Without -variant the minimal variant for the formula's labels is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"weakmodels/internal/bisim"
	"weakmodels/internal/compile"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcheck", flag.ContinueOnError)
	formula := fs.String("formula", "", "modal formula (required)")
	graphSpec := fs.String("graph", "cycle:6", "graph specification")
	portSpec := fs.String("ports", "canonical", "port numbering specification")
	variantName := fs.String("variant", "", "model variant: pp|mp|pm|mm (default: inferred)")
	showBisim := fs.Bool("bisim", false, "also print the bisimulation partition")
	graded := fs.Bool("graded", false, "use graded bisimulation with -bisim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *formula == "" {
		return fmt.Errorf("-formula is required")
	}
	f, err := logic.Parse(*formula)
	if err != nil {
		return err
	}
	g, err := spec.ParseGraph(*graphSpec)
	if err != nil {
		return err
	}
	p, err := spec.ParseNumbering(g, *portSpec)
	if err != nil {
		return err
	}

	var variant kripke.Variant
	switch *variantName {
	case "pp":
		variant = kripke.VariantPP
	case "mp":
		variant = kripke.VariantMP
	case "pm":
		variant = kripke.VariantPM
	case "mm":
		variant = kripke.VariantMM
	case "":
		variant, err = compile.VariantForFormula(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown variant %q", *variantName)
	}

	model := kripke.FromPorts(p, variant)
	sat := logic.Eval(model, f)
	fmt.Printf("formula: %s\n", f.String())
	fmt.Printf("fragment: %s   modal depth: %d   model: %v over %v\n",
		logic.ClassifyFragment(f), logic.ModalDepth(f), variant, g)
	var holds []int
	for v, ok := range sat {
		if ok {
			holds = append(holds, v)
		}
	}
	fmt.Printf("‖φ‖ = %v (%d of %d nodes)\n", holds, len(holds), g.N())

	if *showBisim {
		part := bisim.Compute(model, bisim.Options{Graded: *graded})
		fmt.Printf("bisimulation classes (graded=%v):\n", *graded)
		for id, class := range part.Classes() {
			fmt.Printf("  class %d: %v\n", id, class)
		}
	}
	return nil
}
