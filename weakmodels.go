// Package weakmodels is a full reproduction of Hella, Järvisalo, Kuusisto,
// Laurinharju, Lempiäinen, Luosto, Suomela and Virtema, "Weak Models of
// Distributed Computing, with Connections to Modal Logic" (PODC 2012,
// arXiv:1205.2051).
//
// The library implements the port-numbering model of distributed computing
// and its six weakened variants (classes VVc, VV, MV, SV, VB, MB, SB), the
// modal logics ML, GML, MML and GMML together with the Kripke-model
// translation of a port-numbered graph, bisimulation, the Theorem-2 compiler
// between local algorithms and modal formulas, the simulation theorems that
// collapse the seven classes into four strata, and the separation witnesses
// that keep the strata apart.
//
// Entry points:
//
//   - internal/core: the classification API (strata, solvability harness,
//     separation witnesses, the Figure-5b derivation).
//   - internal/engine: run any machine on any (graph, port numbering).
//   - internal/compile: formulas ⇄ local algorithms (Theorem 2).
//   - cmd/classify: end-to-end machine-checked derivation of
//     SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and theorem.
package weakmodels

// Version is the library version.
const Version = "1.0.0"
