module weakmodels

go 1.24
