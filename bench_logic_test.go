// Logic scale benchmarks: the interned bitset evaluator and the
// integer-signature partition refiner against the seed-era string-keyed
// paths (reimplemented verbatim below as the legacy* functions), on
// expanders and tori at n=10³ and n=10⁴ — plus an n=10⁵ sweep of the new
// paths (skipped under -short so the CI bench smoke stays fast). These
// are the ≥10×-at-n=10⁴ records of PR 10; run
//
//	go test -bench='Bench(EvalBitset|EvalLegacy|BisimRefine)' -benchmem
//
// for the full sweep, or emit the machine-readable record with
//
//	BENCH_LOGIC_JSON=BENCH_logic.json go test -run TestEmitLogicBenchJSON
//
// so future PRs can compare against the committed BENCH_logic.json
// (cmd/benchdiff checks both ns/op and allocs/op).
package weakmodels_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"weakmodels/internal/bisim"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

// logicBenchFormulas is the fixed evaluation workload: depth-2..3
// formulas of both fragments over the q1..q4 degree props, shaped like
// the formulas the suite actually checks at scale (characteristic
// formulas, Fact 1 sweeps): a handful of modal operators over wide
// Boolean combinations, with shared subformulas so the interner's DAG
// sharing is part of the measurement. All modal operators are
// star-labeled because the benchmark models are built in variant mm,
// where only the unlabeled relation exists — a port-labeled diamond
// there would be a free all-false row, not work.
var logicBenchFormulas = []string{
	"<*,*> ((q1 | q2) & !(q3 & q4))",
	"[*,*] ((q1 & q2) | (!q3 & <*,*> (q2 | q4)))",
	"<*,*>=2 ((q2 | !q3) & (q1 | q4)) | <*,*> (q1 & !q2)",
	"!([*,*] (q1 | q2 | q3) & <*,*> <*,*> ((q1 | !q4) & q2))",
	"<*,*>=3 (!q1 & (q2 | q3)) & [*,*] (q4 | !q2 | q1)",
	"<*,*> [*,*] ((q1 & !q3) | (q2 & !q4))",
}

// logicBenchModels builds the base sweep: the expander family at two
// orders of magnitude plus the paper's torus at n=10⁴, all in the
// richest variant (mm) so every formula above is meaningful.
func logicBenchModels(tb testing.TB) map[string]*kripke.Model {
	tb.Helper()
	ex1k, err := graph.Expander(1000, 4, 13)
	if err != nil {
		tb.Fatal(err)
	}
	ex10k, err := graph.Expander(10_000, 4, 13)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*kripke.Model{
		"n=1000/expander4":  kripke.FromPorts(port.Canonical(ex1k), kripke.VariantMM),
		"n=10000/expander4": kripke.FromPorts(port.Canonical(ex10k), kripke.VariantMM),
		"n=10000/torus100":  kripke.FromPorts(port.Canonical(graph.Torus(100, 100)), kripke.VariantMM),
	}
}

// logicBenchLargeModels is the n=10⁵ sweep of the new paths only — the
// legacy implementations take minutes per op there, which is the point
// of the PR, not something to re-measure every CI run.
func logicBenchLargeModels(tb testing.TB) map[string]*kripke.Model {
	tb.Helper()
	ex, err := graph.Expander(100_000, 4, 13)
	if err != nil {
		tb.Fatal(err)
	}
	pa, err := graph.PreferentialAttachment(100_000, 3, 17)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*kripke.Model{
		"n=100000/expander4": kripke.FromPorts(port.Canonical(ex), kripke.VariantMM),
		"n=100000/pa3":       kripke.FromPorts(port.Canonical(pa), kripke.VariantMM),
	}
}

// sortedModelNames keeps b.Run order deterministic across runs.
func sortedModelNames(models map[string]*kripke.Model) []string {
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// legacyBenchEval is the seed-era Eval: recursive AST walk memoized on
// rendered subformulas through a map — the old path the bitset evaluator
// replaced, kept verbatim as the benchmark baseline.
func legacyBenchEval(m *kripke.Model, f logic.Formula, memo map[string][]bool) []bool {
	key := f.String()
	if v, ok := memo[key]; ok {
		return v
	}
	n := m.N()
	out := make([]bool, n)
	switch x := f.(type) {
	case logic.Top:
		for i := range out {
			out[i] = true
		}
	case logic.Bot:
	case logic.Prop:
		for v := 0; v < n; v++ {
			out[v] = m.Prop(x.Name, v)
		}
	case logic.Not:
		inner := legacyBenchEval(m, x.F, memo)
		for v := 0; v < n; v++ {
			out[v] = !inner[v]
		}
	case logic.And:
		l := legacyBenchEval(m, x.L, memo)
		r := legacyBenchEval(m, x.R, memo)
		for v := 0; v < n; v++ {
			out[v] = l[v] && r[v]
		}
	case logic.Or:
		l := legacyBenchEval(m, x.L, memo)
		r := legacyBenchEval(m, x.R, memo)
		for v := 0; v < n; v++ {
			out[v] = l[v] || r[v]
		}
	case logic.Diamond:
		inner := legacyBenchEval(m, x.F, memo)
		for v := 0; v < n; v++ {
			count := 0
			for _, w := range m.Succ(x.Idx, v) {
				if inner[w] {
					count++
					if count >= x.K {
						break
					}
				}
			}
			out[v] = count >= x.K
		}
	default:
		panic(fmt.Sprintf("bench: unknown formula %T", f))
	}
	memo[key] = out
	return out
}

// legacyBenchCompute is the seed-era bisim.Compute: string signatures
// through maps, dense ids by first occurrence — the old path the
// integer-signature refiner replaced, kept verbatim as the baseline.
func legacyBenchCompute(m *kripke.Model, graded bool) bisim.Partition {
	n := m.N()
	part := make(bisim.Partition, n)
	ids := make(map[string]int)
	for v := 0; v < n; v++ {
		sig := m.PropSig(v)
		id, ok := ids[sig]
		if !ok {
			id = len(ids)
			ids[sig] = id
		}
		part[v] = id
	}
	indices := m.Indices()
	for {
		next := legacyBenchRefine(m, part, indices, graded)
		if legacyBenchClasses(part) == legacyBenchClasses(next) {
			return next
		}
		part = next
	}
}

func legacyBenchRefine(m *kripke.Model, part bisim.Partition, indices []kripke.Index, graded bool) bisim.Partition {
	n := m.N()
	next := make(bisim.Partition, n)
	ids := make(map[string]int)
	var sb strings.Builder
	for v := 0; v < n; v++ {
		sb.Reset()
		fmt.Fprintf(&sb, "c%d", part[v])
		for _, alpha := range indices {
			succ := m.Succ(alpha, v)
			classes := make([]int, 0, len(succ))
			for _, w := range succ {
				classes = append(classes, part[w])
			}
			sort.Ints(classes)
			if !graded {
				out := classes[:0]
				for i, x := range classes {
					if i == 0 || x != classes[i-1] {
						out = append(out, x)
					}
				}
				classes = out
			}
			fmt.Fprintf(&sb, "|%v:%v", alpha, classes)
		}
		sig := sb.String()
		id, ok := ids[sig]
		if !ok {
			id = len(ids)
			ids[sig] = id
		}
		next[v] = id
	}
	return next
}

func legacyBenchClasses(p bisim.Partition) int {
	seen := make(map[int]bool)
	for _, c := range p {
		seen[c] = true
	}
	return len(seen)
}

// benchEvalBitset measures the new path: one shared interner/evaluator
// per model, Reset per op so every truth set is recomputed through the
// bitset kernels (the memo fast-path would otherwise reduce later ops to
// a slice load).
func benchEvalBitset(b *testing.B, models map[string]*kripke.Model) {
	for _, name := range sortedModelNames(models) {
		m := models[name]
		m.CSR() // compile outside the timers, like port.Routes
		in := logic.NewInterner()
		ev := logic.NewEvaluator(m, in)
		ids := make([]logic.ID, len(logicBenchFormulas))
		for i, src := range logicBenchFormulas {
			ids[i] = in.Intern(logic.MustParse(src))
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Reset()
				for _, id := range ids {
					ev.Eval(id)
				}
			}
		})
	}
}

// BenchmarkEvalBitset sweeps the interned bitset evaluator over the full
// workload on the base models. Compare against BenchmarkEvalLegacyMap —
// same models, same formulas, the seed's map-memoized AST walk.
func BenchmarkEvalBitset(b *testing.B) { benchEvalBitset(b, logicBenchModels(b)) }

// BenchmarkEvalBitsetLarge is the n=10⁵ sweep, skipped under -short so
// the CI bench smoke stays fast.
func BenchmarkEvalBitsetLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10⁵ sweep skipped in -short mode")
	}
	benchEvalBitset(b, logicBenchLargeModels(b))
}

// BenchmarkEvalLegacyMap is the old path on the base models: a fresh
// string-keyed memo per formula, exactly what the seed's Eval(m, f) did
// before PR 10 — the memo lived inside the call, so nothing was shared
// across formulas. (The persistent cross-formula memo is the new
// evaluator's feature, not the baseline's.)
func BenchmarkEvalLegacyMap(b *testing.B) {
	models := logicBenchModels(b)
	for _, name := range sortedModelNames(models) {
		m := models[name]
		fs := make([]logic.Formula, len(logicBenchFormulas))
		for i, src := range logicBenchFormulas {
			fs[i] = logic.MustParse(src)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range fs {
					legacyBenchEval(m, f, make(map[string][]bool))
				}
			}
		})
	}
}

// benchBisimRefine measures fixpoint refinement on each model at a given
// worker count, both fragments.
func benchBisimRefine(b *testing.B, models map[string]*kripke.Model, workers int) {
	for _, name := range sortedModelNames(models) {
		m := models[name]
		m.CSR()
		for _, graded := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/graded=%v", name, graded), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bisim.Compute(m, bisim.Options{Graded: graded, Workers: workers})
				}
			})
		}
	}
}

// BenchmarkBisimRefine sweeps the integer-signature refiner, sequential
// fill, to fixpoint on the base models. Compare against
// BenchmarkBisimRefineLegacy — the seed's string-signature loop.
func BenchmarkBisimRefine(b *testing.B) { benchBisimRefine(b, logicBenchModels(b), 1) }

// BenchmarkBisimRefinePar is the sharded signature fill at
// benchParWorkers — the partition is bit-identical to the sequential
// entry; only the fill wall-clock changes.
func BenchmarkBisimRefinePar(b *testing.B) {
	benchBisimRefine(b, logicBenchModels(b), benchParWorkers())
}

// BenchmarkBisimRefineLarge is the n=10⁵ sweep at benchParWorkers,
// skipped under -short.
func BenchmarkBisimRefineLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10⁵ sweep skipped in -short mode")
	}
	benchBisimRefine(b, logicBenchLargeModels(b), benchParWorkers())
}

// BenchmarkBisimRefineLegacy is the old path on the base models: string
// signatures through maps, exactly what bisim.Compute did before PR 10.
func BenchmarkBisimRefineLegacy(b *testing.B) {
	models := logicBenchModels(b)
	for _, name := range sortedModelNames(models) {
		m := models[name]
		for _, graded := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/graded=%v", name, graded), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					legacyBenchCompute(m, graded)
				}
			})
		}
	}
}

// logicBenchRecord is one row of BENCH_logic.json.
type logicBenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestEmitLogicBenchJSON writes the logic perf record to the file named
// by BENCH_LOGIC_JSON (skipped when unset):
//
//	BENCH_LOGIC_JSON=BENCH_logic.json go test -run TestEmitLogicBenchJSON
//
// The record includes both the new bitset/integer paths and the legacy
// string-keyed baselines at n=10³..10⁴, so the ≥10× claim of PR 10 is a
// number in the repo, not a sentence in a commit message.
func TestEmitLogicBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_LOGIC_JSON")
	if path == "" {
		t.Skip("BENCH_LOGIC_JSON not set")
	}
	var records []logicBenchRecord
	add := func(name string, r testing.BenchmarkResult) {
		records = append(records, logicBenchRecord{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	base := logicBenchModels(t)
	for _, name := range sortedModelNames(base) {
		m := base[name]
		m.CSR()
		in := logic.NewInterner()
		ev := logic.NewEvaluator(m, in)
		ids := make([]logic.ID, len(logicBenchFormulas))
		fs := make([]logic.Formula, len(logicBenchFormulas))
		for i, src := range logicBenchFormulas {
			fs[i] = logic.MustParse(src)
			ids[i] = in.Intern(fs[i])
		}
		add("Logic/eval-bitset/"+name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev.Reset()
				for _, id := range ids {
					ev.Eval(id)
				}
			}
		}))
		add("Logic/eval-legacy/"+name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, f := range fs {
					legacyBenchEval(m, f, make(map[string][]bool))
				}
			}
		}))
		for _, graded := range []bool{false, true} {
			graded := graded
			add(fmt.Sprintf("Logic/refine-int/%s/graded=%v", name, graded), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bisim.Compute(m, bisim.Options{Graded: graded, Workers: 1})
				}
			}))
			add(fmt.Sprintf("Logic/refine-int-par/%s/graded=%v", name, graded), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bisim.Compute(m, bisim.Options{Graded: graded, Workers: benchParWorkers()})
				}
			}))
			add(fmt.Sprintf("Logic/refine-legacy/%s/graded=%v", name, graded), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					legacyBenchCompute(m, graded)
				}
			}))
		}
	}
	// The n=10⁵ record: new paths only (the legacy paths take minutes per
	// op at this size — which is the headline, not a CI workload).
	large := logicBenchLargeModels(t)
	for _, name := range sortedModelNames(large) {
		m := large[name]
		m.CSR()
		in := logic.NewInterner()
		ev := logic.NewEvaluator(m, in)
		ids := make([]logic.ID, len(logicBenchFormulas))
		for i, src := range logicBenchFormulas {
			ids[i] = in.Intern(logic.MustParse(src))
		}
		add("Logic/eval-bitset/"+name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev.Reset()
				for _, id := range ids {
					ev.Eval(id)
				}
			}
		}))
		for _, graded := range []bool{false, true} {
			graded := graded
			add(fmt.Sprintf("Logic/refine-int-par/%s/graded=%v", name, graded), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bisim.Compute(m, bisim.Options{Graded: graded, Workers: benchParWorkers()})
				}
			}))
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Name < records[j].Name })
	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d records to %s", len(records), path)
}
