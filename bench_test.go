// Package weakmodels_test is the top-level benchmark harness: one benchmark
// per experiment row of EXPERIMENTS.md (the paper's figures and theorems).
// Custom metrics report the quantities the paper reasons about — rounds,
// message bytes, approximation ratios, bisimulation classes — so running
//
//	go test -bench=. -benchmem
//
// regenerates the full paper-versus-measured record.
package weakmodels_test

import (
	"fmt"
	"math/rand"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/bisim"
	"weakmodels/internal/compile"
	"weakmodels/internal/core"
	"weakmodels/internal/cover"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/simulate"
	"weakmodels/internal/universal"
	"weakmodels/internal/views"
)

// BenchmarkF1PortNumbering — Figure 1: generating and validating port
// numberings.
func BenchmarkF1PortNumbering(b *testing.B) {
	g := graph.Torus(12, 12)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := port.Random(g, rng)
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2ConsistencyCheck — Figure 2: consistency checking.
func BenchmarkF2ConsistencyCheck(b *testing.B) {
	g := graph.Torus(12, 12)
	p := port.Canonical(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.IsConsistent() {
			b.Fatal("canonical numbering must be consistent")
		}
	}
}

// BenchmarkF5Classify — Figure 5b: the full linear-order derivation.
func BenchmarkF5Classify(b *testing.B) {
	suite := core.Suite{
		Graphs:       []*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Star(3)},
		RandomTrials: 1,
		Seed:         1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Derive(suite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF7KripkeBuild — Figure 7: building the four model variants.
func BenchmarkF7KripkeBuild(b *testing.B) {
	g := graph.Torus(10, 10)
	p := port.Canonical(g)
	for _, variant := range []kripke.Variant{
		kripke.VariantPP, kripke.VariantMP, kripke.VariantPM, kripke.VariantMM,
	} {
		b.Run(variant.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kripke.FromPorts(p, variant)
			}
		})
	}
}

// BenchmarkF8OneFactorization — Figure 8 / Lemma 15: double cover and
// 1-factorization across regular families.
func BenchmarkF8OneFactorization(b *testing.B) {
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"petersen", graph.Petersen()},
		{"hypercube5", graph.Hypercube(5)},
		{"no1factor", graph.NoOneFactorCubic()},
	} {
		b.Run(fam.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.DoubleCoverFactorPermutations(fam.g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF9Blossom — Figure 9: maximum matching on the witness graph and
// random cubic graphs.
func BenchmarkF9Blossom(b *testing.B) {
	for _, n := range []int{16, 50, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var g *graph.Graph
			if n == 16 {
				g = graph.NoOneFactorCubic()
			} else {
				var err error
				g, err = graph.RandomRegular(n, 3, rand.New(rand.NewSource(2)))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var nu int
			for i := 0; i < b.N; i++ {
				nu = graph.Nu(g)
			}
			b.ReportMetric(float64(nu), "nu")
		})
	}
}

// BenchmarkT3CompileForward — Table 3 forward: formula → machine → run.
func BenchmarkT3CompileForward(b *testing.B) {
	f := logic.MustParse("<*,*>=2 (<*,*> q1)")
	g := graph.Grid(6, 6)
	p := port.Canonical(g)
	m, _, err := compile.MachineFromFormula(f, g.MaxDegree())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(m, p, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT3CompileBackward — Table 3 backward: machine → formula.
func BenchmarkT3CompileBackward(b *testing.B) {
	m := algorithms.OddOdd(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := compile.FormulaFromMachine(m, 3, 1, compile.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT3ModelCheck — Table 3: direct model checking as the baseline
// the compiled algorithm is compared against.
func BenchmarkT3ModelCheck(b *testing.B) {
	f := logic.MustParse("<*,*>=2 (<*,*> q1)")
	g := graph.Grid(6, 6)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logic.Eval(m, f)
	}
}

// BenchmarkThm4Overhead — Theorem 4: the Set-from-Multiset simulation,
// sweeping Δ. Reported metrics: total rounds (inner T + 2Δ warm-up) and
// message bytes (the β-tag growth the paper's open question asks about).
// Δ=4 is excluded from the default sweep: the β_{2Δ} tags grow like
// Δ^{2Δ} and one run already moves ~80 MB (measured once, recorded in
// EXPERIMENTS.md) — which is itself the answer the paper's open question
// anticipates.
func BenchmarkThm4Overhead(b *testing.B) {
	for _, delta := range []int{2, 3} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			g, err := graph.RandomRegular(10, delta, rand.New(rand.NewSource(3)))
			if err != nil {
				b.Fatal(err)
			}
			inner := algorithms.VertexCover2(delta)
			wrapped, err := simulate.SetFromMultiset(inner)
			if err != nil {
				b.Fatal(err)
			}
			p := port.Canonical(g)
			base, err := engine.Run(inner, p, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var res *engine.Result
			for i := 0; i < b.N; i++ {
				res, err = engine.Run(wrapped, p, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.Rounds-base.Rounds), "overhead-rounds")
			b.ReportMetric(float64(res.MessageBytes), "msg-bytes")
		})
	}
}

// BenchmarkThm8History — Theorem 8: the Multiset-from-Vector simulation,
// sweeping the inner runtime T. Message bytes grow with T (full histories).
func BenchmarkThm8History(b *testing.B) {
	for _, t := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("T=%d", t), func(b *testing.B) {
			g := graph.Cycle(10)
			inner := countdownVector(2, t)
			wrapped, err := simulate.MultisetFromVector(inner)
			if err != nil {
				b.Fatal(err)
			}
			p := port.Canonical(g)
			b.ReportAllocs()
			b.ResetTimer()
			var res *engine.Result
			for i := 0; i < b.N; i++ {
				res, err = engine.Run(wrapped, p, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.MessageBytes), "msg-bytes")
		})
	}
}

// BenchmarkThm11LeafElection / Thm13OddOdd / Thm17LocalTypeMax — the
// positive halves of the separations at benchmark scale.
func BenchmarkThm11LeafElection(b *testing.B) {
	g := graph.Star(50)
	m := algorithms.LeafElect(50)
	p := port.Canonical(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(m, p, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm13OddOdd(b *testing.B) {
	g := graph.Torus(10, 10)
	m := algorithms.OddOdd(4)
	p := port.Canonical(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(m, p, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm17LocalTypeMax(b *testing.B) {
	g := graph.NoOneFactorCubic()
	m := algorithms.LocalTypeMax(3)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := port.RandomConsistent(g, rng)
		if _, err := engine.Run(m, p, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeparationBisim — the negative halves: bisimulation partition
// refinement on the witness models.
func BenchmarkSeparationBisim(b *testing.B) {
	witness13, _, _ := graph.Theorem13Witness()
	cases := []struct {
		name    string
		p       *port.Numbering
		variant kripke.Variant
		graded  bool
	}{
		{"thm11-star-PM", port.Canonical(graph.Star(20)), kripke.VariantPM, false},
		{"thm13-witness-MM", port.Canonical(witness13), kripke.VariantMM, false},
		{"thm17-no1factor-PP", mustSymmetric(b, graph.NoOneFactorCubic()), kripke.VariantPP, false},
		{"graded-torus-MM", port.Canonical(graph.Torus(8, 8)), kripke.VariantMM, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			m := kripke.FromPorts(tc.p, tc.variant)
			b.ReportAllocs()
			var classes int
			for i := 0; i < b.N; i++ {
				part := bisim.Compute(m, bisim.Options{Graded: tc.graded})
				classes = len(part.Classes())
			}
			b.ReportMetric(float64(classes), "classes")
		})
	}
}

// BenchmarkVC2Ratio — Section 3.3: measured approximation ratio of the MB
// vertex-cover algorithm per family (the paper's headline "non-trivial
// problem in MB(1)" claim: ratio ≤ 2 everywhere).
func BenchmarkVC2Ratio(b *testing.B) {
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle101", graph.Cycle(101)},
		{"grid8x8", graph.Grid(8, 8)},
		{"petersen", graph.Petersen()},
		{"no1factor", graph.NoOneFactorCubic()},
	} {
		b.Run(fam.name, func(b *testing.B) {
			g := fam.g
			m := algorithms.VertexCover2(g.MaxDegree())
			p := port.Canonical(g)
			b.ReportAllocs()
			var ratio float64
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(m, p, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				size := 0
				for _, o := range res.Output {
					if o == "1" {
						size++
					}
				}
				ratio = float64(size) / float64(graph.Nu(g)) // vs matching lower bound
				rounds = res.Rounds
			}
			b.ReportMetric(ratio, "cover/nu")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkEngineExecutors — sequential vs worker-pool executor on the same
// workload (library ablation, DESIGN.md §3). The scale sweep lives in
// bench_engine_test.go.
func BenchmarkEngineExecutors(b *testing.B) {
	g := graph.Torus(12, 12)
	p := port.Canonical(g)
	m := algorithms.OddOdd(4)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(m, p, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pool", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(m, p, engine.Options{Executor: engine.ExecutorPool}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// countdownVector is a Vector machine that sends its out-port number and
// runs exactly t rounds, for the Theorem 8 history-growth sweep.
func countdownVector(delta, t int) machine.Machine {
	type st struct {
		Deg  int
		Left int
	}
	return &machine.Func{
		MachineName:  fmt.Sprintf("countdown-%d", t),
		MachineClass: machine.ClassVV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg, Left: t} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return "done", x.Left == 0
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return machine.Message(fmt.Sprintf("p%d-r%d", p, s.(st).Left))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			x.Left--
			return x
		},
	}
}

func mustSymmetric(b *testing.B, g *graph.Graph) *port.Numbering {
	b.Helper()
	perms, err := graph.DoubleCoverFactorPermutations(g)
	if err != nil {
		b.Fatal(err)
	}
	p, err := port.FromPermutationFactors(g, perms)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkViewsVsBisim — §3.3 classical substrate: view refinement vs
// partition refinement computing the same equivalence.
func BenchmarkViewsVsBisim(b *testing.B) {
	g := graph.Torus(8, 8)
	p := port.Canonical(g)
	b.Run("views", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			views.Classes(p, 8)
		}
	})
	b.Run("bisim", func(b *testing.B) {
		m := kripke.FromPorts(p, kripke.VariantPP)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bisim.Compute(m, bisim.Options{Graded: true, MaxRounds: 8})
		}
	})
}

// BenchmarkLift — §3.3: permutation-voltage lifts.
func BenchmarkLift(b *testing.B) {
	p := port.Canonical(graph.Petersen())
	rng := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := cover.Lift(p, 3, cover.RandomVoltage(3, rng)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnfold — §3.3: truncated universal covers.
func BenchmarkUnfold(b *testing.B) {
	p := port.Canonical(graph.Petersen())
	b.ReportAllocs()
	var size int
	for i := 0; i < b.N; i++ {
		u, err := universal.Unfold(p, 0, 6)
		if err != nil {
			b.Fatal(err)
		}
		size = u.Tree().N()
	}
	b.ReportMetric(float64(size), "tree-nodes")
}

// BenchmarkCharacteristicFormula — Fact 1's converse: building the
// Hennessy–Milner characteristic formulas.
func BenchmarkCharacteristicFormula(b *testing.B) {
	g := graph.Petersen()
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bisim.Characteristic(m, 2, 3, true)
	}
}

// BenchmarkTwoFactorizationPetersen1891 — the cited 1891 substrate.
func BenchmarkTwoFactorizationPetersen1891(b *testing.B) {
	g := graph.Torus(6, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := graph.TwoFactorization(g); err != nil {
			b.Fatal(err)
		}
	}
}
