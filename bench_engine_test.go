// Engine scale benchmarks: the flat-routed executors on tori, random
// regular graphs, expanders and preferential-attachment graphs across the
// three receive modes, at sizes up to n=10⁴ — plus an n=10⁵ large-graph
// sweep (BenchmarkEngineLarge*, skipped under -short so the CI bench smoke
// stays fast), an async-with-faults sweep measuring the fault-injection
// hooks under an always-active message-fault plan, and an async-byzantine
// sweep with the payload corrupter live on every delivery.
// These are the perf-trajectory benchmarks of the engine subsystem; run
//
//	go test -bench='BenchmarkEngine(Seq|Pool|Async)' -benchmem
//
// for the full sweep, or emit the machine-readable record with
//
//	BENCH_ENGINE_JSON=BENCH_engine.json go test -run TestEmitEngineBenchJSON
//
// so future PRs can compare against the committed BENCH_engine.json
// (cmd/benchdiff checks both ns/op and allocs/op).
package weakmodels_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"

	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
)

// benchMetrics is the shared metrics registry of the bench sweeps, nil
// unless BENCH_METRICS names a snapshot path. When set, every benchmarked
// engine.Run accumulates into the one registry and TestMain writes the
// Prometheus text snapshot on exit — the CI bench smoke uploads it as a
// workflow artifact next to the benchdiff digest. The registry is a fixed
// set of pre-registered series, so attaching it does not add per-op
// allocations that would skew -benchmem.
var benchMetrics = func() *obs.Metrics {
	if os.Getenv("BENCH_METRICS") == "" {
		return nil
	}
	return obs.NewMetrics()
}()

// benchObs resolves the Options.Obs hook of a benchmarked run: nil (the
// zero-overhead path) unless BENCH_METRICS is set.
func benchObs() *obs.Obs {
	if benchMetrics == nil {
		return nil
	}
	return &obs.Obs{Metrics: benchMetrics}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_METRICS"); path != "" && benchMetrics != nil {
		if err := writeBenchMetrics(path); err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_METRICS:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

func writeBenchMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = benchMetrics.WriteText(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// engineBenchRounds fixes the round count so runs are comparable across
// graphs and modes.
const engineBenchRounds = 8

// constCountdown is the benchmark workload: a machine whose Send returns a
// per-port constant and whose states are small ints, so it allocates
// nothing itself and the engine's own costs dominate the profile.
func constCountdown(delta int, class machine.Class) machine.Machine {
	return constCountdownRounds(delta, class, engineBenchRounds)
}

// constCountdownRounds is constCountdown with a parameterized round count,
// for sweeps whose workload must outlive a cadence (the K=64 checkpoint
// benchmark needs more than 64 rounds to capture anything).
func constCountdownRounds(delta int, class machine.Class, rounds int) machine.Machine {
	msgs := make([]machine.Message, delta+1)
	for p := range msgs {
		msgs[p] = fmt.Sprintf("m%d", p)
	}
	return &machine.Func{
		MachineName:  "bench-countdown-" + class.String(),
		MachineClass: class,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return rounds },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			return "done", s.(int) == 0
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return msgs[p]
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			return s.(int) - 1
		},
	}
}

// engineBenchGraphs builds the benchmark graph family: tori (the paper's
// grid workloads), sparse random regular graphs, random expanders and
// preferential-attachment graphs (hub-heavy degree skew).
func engineBenchGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	rr, err := graph.RandomRegular(1000, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		tb.Fatal(err)
	}
	ex, err := graph.Expander(1000, 4, 13)
	if err != nil {
		tb.Fatal(err)
	}
	pa, err := graph.PreferentialAttachment(1000, 3, 17)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*graph.Graph{
		"n=1024/torus32":   graph.Torus(32, 32),
		"n=10000/torus100": graph.Torus(100, 100),
		"n=1000/rr3":       rr,
		"n=1000/expander4": ex,
		"n=1000/pa3":       pa,
	}
}

// engineBenchLargeGraphs is the n=10⁵ sweep of the ROADMAP's "sweep to
// n≈10⁶" trajectory: the two skew-prone families at two orders of
// magnitude past the base sweep. Built lazily — constructing 10⁵-node
// graphs is itself measurable work that only the large benchmarks and the
// JSON emission should pay for.
func engineBenchLargeGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	ex, err := graph.Expander(100_000, 4, 13)
	if err != nil {
		tb.Fatal(err)
	}
	pa, err := graph.PreferentialAttachment(100_000, 3, 17)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*graph.Graph{
		"n=100000/expander4": ex,
		"n=100000/pa3":       pa,
	}
}

var engineBenchModes = []machine.Class{
	machine.ClassVV, machine.ClassMV, machine.ClassSV,
}

// benchFaultPlan builds the always-active message-fault plan of the
// async-faults sweep: 5% omission + 5% duplication with an effectively
// infinite horizon, so every delivery pays the filter. Plans are stateful,
// so each run needs a fresh one.
func benchFaultPlan() fault.Plan {
	const never = 1 << 30
	return fault.Compose(fault.DropFor(7, 0.05, never), fault.DupFor(9, 0.05, never))
}

// benchByzantinePlan builds the hostile-link plan of the async-byzantine
// sweep: 10% Byzantine corruption with an effectively infinite horizon, so
// every delivery pays the filter and one in ten pays the payload rewrite
// (and, sharded, the coordinator's corrupted-payload pre-draw). The
// countdown workload ignores its inbox, so corrupted payloads cannot
// change the run's length — the sweep isolates the corruption machinery.
func benchByzantinePlan() fault.Plan {
	const never = 1 << 30
	return fault.ByzantineFor(7, 0.10, never)
}

// benchParWorkers resolves the shard count of the parallel-async sweeps:
// GOMAXPROCS, floored at 2 so the sharded runtime (staging rings,
// barriers) is the thing being measured even on single-core hosts — where
// workers=GOMAXPROCS would degenerate to the inline path that the plain
// async entries already record.
func benchParWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 2 {
		return w
	}
	return 2
}

func benchEngineGraphs(b *testing.B, exec engine.Executor, workers int, graphs map[string]*graph.Graph, plan func() fault.Plan) {
	for gname, g := range graphs {
		p := port.Canonical(g)
		p.Routes() // compile the routing table outside the timers
		for _, mode := range engineBenchModes {
			m := constCountdown(g.MaxDegree(), mode)
			b.Run(gname+"/"+mode.Recv.String(), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opts := engine.Options{Executor: exec, Workers: workers, Obs: benchObs()}
					if plan != nil {
						opts.Fault = plan()
					}
					if _, err := engine.Run(m, p, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchEngine(b *testing.B, exec engine.Executor) {
	benchEngineGraphs(b, exec, 0, engineBenchGraphs(b), nil)
}

// benchEngineLarge runs the n=10⁵ sweep; skipped under -short so the CI
// bench smoke (which passes -short) stays fast.
func benchEngineLarge(b *testing.B, exec engine.Executor) {
	if testing.Short() {
		b.Skip("n=10⁵ sweep skipped in -short mode")
	}
	benchEngineGraphs(b, exec, 0, engineBenchLargeGraphs(b), nil)
}

// BenchmarkEngineSeq sweeps the sequential executor.
func BenchmarkEngineSeq(b *testing.B) { benchEngine(b, engine.ExecutorSeq) }

// BenchmarkEnginePool sweeps the sharded worker-pool executor.
func BenchmarkEnginePool(b *testing.B) { benchEngine(b, engine.ExecutorPool) }

// BenchmarkEngineAsync sweeps the asynchronous executor under its default
// Synchronous schedule on the inline single-shard runtime (workers=1): the
// cost of per-link queueing relative to the double-buffered arena, at
// identical semantics. Pinned at one worker so the entry keeps measuring
// the same code path it always has; the sharded form has its own sweep
// below.
func BenchmarkEngineAsync(b *testing.B) {
	benchEngineGraphs(b, engine.ExecutorAsync, 1, engineBenchGraphs(b), nil)
}

// BenchmarkEngineAsyncPar sweeps the sharded parallel async driver at
// benchParWorkers shards — the workers=GOMAXPROCS row of the async speedup
// record. Compare against BenchmarkEngineAsync (workers=1): identical
// semantics, bit-identical results.
func BenchmarkEngineAsyncPar(b *testing.B) {
	benchEngineGraphs(b, engine.ExecutorAsync, benchParWorkers(), engineBenchGraphs(b), nil)
}

// BenchmarkEngineAsyncFaults sweeps the async executor with the delivery
// filter live on every message: the marginal cost of fault injection.
// Compare against BenchmarkEngineAsync; the no-plan numbers must stay
// identical to PR 2's (the zero-overhead claim benchdiff checks).
func BenchmarkEngineAsyncFaults(b *testing.B) {
	benchEngineGraphs(b, engine.ExecutorAsync, 1, engineBenchGraphs(b), benchFaultPlan)
}

// BenchmarkEngineAsyncFaultsPar sweeps the sharded async driver with the
// fault plan live: the coordinator pre-draws every delivery fate in link
// order, so this measures the serial fate pass on top of the parallel
// delivery/firing phases.
func BenchmarkEngineAsyncFaultsPar(b *testing.B) {
	benchEngineGraphs(b, engine.ExecutorAsync, benchParWorkers(), engineBenchGraphs(b), benchFaultPlan)
}

// BenchmarkEngineAsyncByzantine sweeps the async executor with Byzantine
// corruption live: the delivery filter plus a 10% payload-rewrite rate.
// Compare against BenchmarkEngineAsyncFaults — the delta is the corrupter
// (RNG draws interleaved with the filter's, byte-level rewrites).
func BenchmarkEngineAsyncByzantine(b *testing.B) {
	benchEngineGraphs(b, engine.ExecutorAsync, 1, engineBenchGraphs(b), benchByzantinePlan)
}

// BenchmarkEngineAsyncByzantinePar is the sharded form: the coordinator
// pre-draws corrupted payloads alongside the fates, so this measures the
// serial corrupt-and-stash pass on top of the parallel phases.
func BenchmarkEngineAsyncByzantinePar(b *testing.B) {
	benchEngineGraphs(b, engine.ExecutorAsync, benchParWorkers(), engineBenchGraphs(b), benchByzantinePlan)
}

// BenchmarkEngineLargeSeq sweeps the sequential executor at n=10⁵.
func BenchmarkEngineLargeSeq(b *testing.B) { benchEngineLarge(b, engine.ExecutorSeq) }

// BenchmarkEngineLargePool sweeps the pool executor at n=10⁵.
func BenchmarkEngineLargePool(b *testing.B) { benchEngineLarge(b, engine.ExecutorPool) }

// benchCheckpointRounds lengthens the countdown past the K=64 checkpoint
// cadence: 160 rounds capture snapshots at rounds 64 and 128, so the
// per-op cost below amortizes two full-state captures.
const benchCheckpointRounds = 160

// benchCheckpointConfigs are the checkpoint configurations of the
// checkpoint-overhead sweep. Fresh CheckpointOptions per op — the sink
// closure is part of the measured configuration.
var benchCheckpointConfigs = []struct {
	name string
	cp   func() *engine.CheckpointOptions
}{
	// off is the nil-checkpoint baseline on the same 160-round workload:
	// the cadence test costs a pointer check per round and nothing else.
	{"off", func() *engine.CheckpointOptions { return nil }},
	// k64 captures the full executor state every 64 rounds and discards
	// it: the pure cost of the state copy.
	{"k64", func() *engine.CheckpointOptions {
		return &engine.CheckpointOptions{Every: 64, Sink: func(*engine.Snapshot) error { return nil }}
	}},
	// k64-encode additionally serializes each snapshot to the versioned
	// binary form a flight recorder persists: capture plus encoding.
	{"k64-encode", func() *engine.CheckpointOptions {
		return &engine.CheckpointOptions{Every: 64, Sink: func(s *engine.Snapshot) error {
			_, err := s.MarshalBinary()
			return err
		}}
	}},
}

// benchEngineCheckpoint sweeps the checkpoint configurations on one graph
// with the 160-round countdown.
func benchEngineCheckpoint(b *testing.B, g *graph.Graph) {
	p := port.Canonical(g)
	p.Routes()
	m := constCountdownRounds(g.MaxDegree(), machine.ClassVV, benchCheckpointRounds)
	for _, c := range benchCheckpointConfigs {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := engine.Options{Executor: engine.ExecutorSeq, Obs: benchObs(), Checkpoint: c.cp()}
				if _, err := engine.Run(m, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCheckpoint measures flight-recorder snapshot overhead at
// the default K=64 cadence on the n=10⁵ expander (skipped under -short
// like the rest of the large sweep): nil-checkpoint baseline vs live
// capture vs capture-plus-binary-encoding, all on the sequential executor
// so the deltas are not masked by shard scheduling.
func BenchmarkEngineCheckpoint(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10⁵ checkpoint sweep skipped in -short mode")
	}
	ex, err := graph.Expander(100_000, 4, 13)
	if err != nil {
		b.Fatal(err)
	}
	benchEngineCheckpoint(b, ex)
}

// engineBenchRecord is one row of BENCH_engine.json.
type engineBenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestEmitEngineBenchJSON writes the engine perf record to the file named
// by BENCH_ENGINE_JSON (skipped when unset), giving every future PR a
// trajectory to compare against:
//
//	BENCH_ENGINE_JSON=BENCH_engine.json go test -run TestEmitEngineBenchJSON
func TestEmitEngineBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_ENGINE_JSON")
	if path == "" {
		t.Skip("BENCH_ENGINE_JSON not set")
	}
	var records []engineBenchRecord
	emit := func(family string, exec engine.Executor, workers int, graphs map[string]*graph.Graph, plan func() fault.Plan) {
		for gname, g := range graphs {
			p := port.Canonical(g)
			p.Routes()
			for _, mode := range engineBenchModes {
				m := constCountdown(g.MaxDegree(), mode)
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						opts := engine.Options{Executor: exec, Workers: workers, Obs: benchObs()}
						if plan != nil {
							opts.Fault = plan()
						}
						if _, err := engine.Run(m, p, opts); err != nil {
							b.Fatal(err)
						}
					}
				})
				records = append(records, engineBenchRecord{
					Name:        fmt.Sprintf("Engine/%s/%s/%s", family, gname, mode.Recv),
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
				})
			}
		}
	}
	small := engineBenchGraphs(t)
	for _, exec := range []engine.Executor{engine.ExecutorSeq, engine.ExecutorPool} {
		emit(exec.String(), exec, 0, small, nil)
	}
	// The async speedup record: workers=1 (the single-threaded driver,
	// comparable with every earlier baseline) vs the sharded driver at
	// benchParWorkers ("-par"), plus the fault-filter sweeps on both.
	emit("async", engine.ExecutorAsync, 1, small, nil)
	emit("async-par", engine.ExecutorAsync, benchParWorkers(), small, nil)
	emit("async-faults", engine.ExecutorAsync, 1, small, benchFaultPlan)
	emit("async-faults-par", engine.ExecutorAsync, benchParWorkers(), small, benchFaultPlan)
	emit("async-byzantine", engine.ExecutorAsync, 1, small, benchByzantinePlan)
	emit("async-byzantine-par", engine.ExecutorAsync, benchParWorkers(), small, benchByzantinePlan)
	large := engineBenchLargeGraphs(t)
	for _, exec := range []engine.Executor{engine.ExecutorSeq, engine.ExecutorPool} {
		emit(exec.String(), exec, 0, large, nil)
	}
	// The checkpoint-overhead record: the n=10⁵ expander under the
	// 160-round countdown, nil-checkpoint baseline vs K=64 capture vs
	// capture-plus-encoding (mirrors BenchmarkEngineCheckpoint).
	{
		g := large["n=100000/expander4"]
		p := port.Canonical(g)
		p.Routes()
		m := constCountdownRounds(g.MaxDegree(), machine.ClassVV, benchCheckpointRounds)
		for _, c := range benchCheckpointConfigs {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opts := engine.Options{Executor: engine.ExecutorSeq, Obs: benchObs(), Checkpoint: c.cp()}
					if _, err := engine.Run(m, p, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			records = append(records, engineBenchRecord{
				Name:        "Engine/checkpoint/n=100000/expander4/" + c.name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			})
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Name < records[j].Name })
	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d records to %s", len(records), path)
}
