// Engine scale benchmarks: the flat-routed executors on tori, random
// regular graphs, expanders and preferential-attachment graphs across the
// three receive modes, at sizes up to n=10⁴.
// These are the perf-trajectory benchmarks of the engine subsystem; run
//
//	go test -bench='BenchmarkEngine(Seq|Pool|Async)' -benchmem
//
// for the full sweep, or emit the machine-readable record with
//
//	BENCH_ENGINE_JSON=BENCH_engine.json go test -run TestEmitEngineBenchJSON
//
// so future PRs can compare against the committed BENCH_engine.json.
package weakmodels_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// engineBenchRounds fixes the round count so runs are comparable across
// graphs and modes.
const engineBenchRounds = 8

// constCountdown is the benchmark workload: a machine whose Send returns a
// per-port constant and whose states are small ints, so it allocates
// nothing itself and the engine's own costs dominate the profile.
func constCountdown(delta int, class machine.Class) machine.Machine {
	msgs := make([]machine.Message, delta+1)
	for p := range msgs {
		msgs[p] = fmt.Sprintf("m%d", p)
	}
	return &machine.Func{
		MachineName:  "bench-countdown-" + class.String(),
		MachineClass: class,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return engineBenchRounds },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			return "done", s.(int) == 0
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return msgs[p]
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			return s.(int) - 1
		},
	}
}

// engineBenchGraphs builds the benchmark graph family: tori (the paper's
// grid workloads), sparse random regular graphs, random expanders and
// preferential-attachment graphs (hub-heavy degree skew).
func engineBenchGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	rr, err := graph.RandomRegular(1000, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		tb.Fatal(err)
	}
	ex, err := graph.Expander(1000, 4, 13)
	if err != nil {
		tb.Fatal(err)
	}
	pa, err := graph.PreferentialAttachment(1000, 3, 17)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*graph.Graph{
		"n=1024/torus32":   graph.Torus(32, 32),
		"n=10000/torus100": graph.Torus(100, 100),
		"n=1000/rr3":       rr,
		"n=1000/expander4": ex,
		"n=1000/pa3":       pa,
	}
}

var engineBenchModes = []machine.Class{
	machine.ClassVV, machine.ClassMV, machine.ClassSV,
}

func benchEngine(b *testing.B, exec engine.Executor) {
	for gname, g := range engineBenchGraphs(b) {
		p := port.Canonical(g)
		p.Routes() // compile the routing table outside the timers
		for _, mode := range engineBenchModes {
			m := constCountdown(g.MaxDegree(), mode)
			b.Run(gname+"/"+mode.Recv.String(), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := engine.Run(m, p, engine.Options{Executor: exec}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineSeq sweeps the sequential executor.
func BenchmarkEngineSeq(b *testing.B) { benchEngine(b, engine.ExecutorSeq) }

// BenchmarkEnginePool sweeps the sharded worker-pool executor.
func BenchmarkEnginePool(b *testing.B) { benchEngine(b, engine.ExecutorPool) }

// BenchmarkEngineAsync sweeps the asynchronous executor under its default
// Synchronous schedule: the cost of per-link queueing relative to the
// double-buffered arena, at identical semantics.
func BenchmarkEngineAsync(b *testing.B) { benchEngine(b, engine.ExecutorAsync) }

// engineBenchRecord is one row of BENCH_engine.json.
type engineBenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestEmitEngineBenchJSON writes the engine perf record to the file named
// by BENCH_ENGINE_JSON (skipped when unset), giving every future PR a
// trajectory to compare against:
//
//	BENCH_ENGINE_JSON=BENCH_engine.json go test -run TestEmitEngineBenchJSON
func TestEmitEngineBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_ENGINE_JSON")
	if path == "" {
		t.Skip("BENCH_ENGINE_JSON not set")
	}
	var records []engineBenchRecord
	for _, exec := range []engine.Executor{engine.ExecutorSeq, engine.ExecutorPool, engine.ExecutorAsync} {
		for gname, g := range engineBenchGraphs(t) {
			p := port.Canonical(g)
			p.Routes()
			for _, mode := range engineBenchModes {
				m := constCountdown(g.MaxDegree(), mode)
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := engine.Run(m, p, engine.Options{Executor: exec}); err != nil {
							b.Fatal(err)
						}
					}
				})
				records = append(records, engineBenchRecord{
					Name:        fmt.Sprintf("Engine/%s/%s/%s", exec, gname, mode.Recv),
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
				})
			}
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Name < records[j].Name })
	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d records to %s", len(records), path)
}
